package ftckpt

// Tests for the causal span tracer surface: the per-phase overhead
// attribution must conserve virtual completion time, match each
// protocol's cost signature (pcl freezes and coordinates but never logs;
// vcl logs but never freezes), and be byte-identical across repeated
// runs and across Sweep -jobs values.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// attribOptions uses a single checkpoint server deliberately: server
// contention stretches vcl's log shipments past the concurrent image
// window, so the logging phase is visible despite the partition's
// image-over-logging precedence.
func attribOptions(proto Protocol) Options {
	return Options{
		Workload:    WorkloadCGReal,
		NP:          4,
		Protocol:    proto,
		Interval:    5 * time.Millisecond,
		Servers:     1,
		Seed:        7,
		Attribution: true,
	}
}

func attribJSON(t *testing.T, a *Attribution) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestAttributionProtocolSignatures machine-checks the paper's cost
// structure: the blocking protocol pays freeze and coordination and never
// logs; the non-blocking protocol logs channel state and never freezes;
// message logging logs.  Every breakdown must conserve completion time.
func TestAttributionProtocolSignatures(t *testing.T) {
	for _, tc := range []struct {
		proto Protocol
		check func(t *testing.T, a *Attribution)
	}{
		{Pcl, func(t *testing.T, a *Attribution) {
			if a.Aggregate.Freeze <= 0 {
				t.Error("pcl: freeze time should be nonzero")
			}
			if a.Aggregate.Coordination <= 0 {
				t.Error("pcl: coordination time should be nonzero")
			}
			if a.Aggregate.Logging != 0 {
				t.Errorf("pcl: logging should be zero, got %v", a.Aggregate.Logging)
			}
		}},
		{Vcl, func(t *testing.T, a *Attribution) {
			if a.Aggregate.Logging <= 0 {
				t.Error("vcl: logging time should be nonzero")
			}
			if a.Aggregate.Freeze != 0 {
				t.Errorf("vcl: freeze should be zero, got %v", a.Aggregate.Freeze)
			}
		}},
		{Mlog, func(t *testing.T, a *Attribution) {
			if a.Aggregate.Logging <= 0 {
				t.Error("mlog: logging time should be nonzero")
			}
			if a.Aggregate.Freeze != 0 || a.Aggregate.Coordination != 0 {
				t.Errorf("mlog: freeze/coordination should be zero, got %v/%v",
					a.Aggregate.Freeze, a.Aggregate.Coordination)
			}
		}},
	} {
		t.Run(string(tc.proto), func(t *testing.T) {
			rep, err := Run(attribOptions(tc.proto))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			a := rep.Attribution
			if a == nil {
				t.Fatal("Report.Attribution is nil with Options.Attribution set")
			}
			if err := a.Check(); err != nil {
				t.Fatalf("conservation: %v", err)
			}
			if a.NP != 4 || string(tc.proto) != a.Protocol {
				t.Fatalf("attribution identity: %s np=%d", a.Protocol, a.NP)
			}
			if a.Aggregate.ImageTransfer <= 0 {
				t.Error("image transfer time should be nonzero for a checkpointing run")
			}
			tc.check(t, a)
		})
	}
}

// TestAttributionRecoveryPhases injects a failure and requires nonzero
// rollback on every rank of a coordinated protocol.
func TestAttributionRecoveryPhases(t *testing.T) {
	o := attribOptions(Pcl)
	o.Failures = []Failure{KillRank(8*time.Millisecond, 2)}
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a := rep.Attribution
	if err := a.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	for r, b := range a.Ranks {
		if b.Rollback <= 0 {
			t.Errorf("rank %d: coordinated rollback should be nonzero, got %v", r, b.Rollback)
		}
	}
}

// TestAttributionDeterministic runs the same Options twice and requires
// byte-identical attribution JSON — the golden contract.
func TestAttributionDeterministic(t *testing.T) {
	for _, proto := range []Protocol{Pcl, Vcl, Mlog} {
		t.Run(string(proto), func(t *testing.T) {
			o := attribOptions(proto)
			o.Failures = []Failure{KillRank(8*time.Millisecond, 1)}
			rep1, err := Run(o)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			rep2, err := Run(o)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			j1, j2 := attribJSON(t, rep1.Attribution), attribJSON(t, rep2.Attribution)
			if !bytes.Equal(j1, j2) {
				t.Fatalf("attribution JSON differs across identical runs:\n%s\nvs\n%s", j1, j2)
			}
		})
	}
}

// TestAttributionJobsInvariant sweeps four points sequentially and at
// Jobs=4 and requires every point's attribution to be byte-identical —
// span IDs come from the per-run hub, so concurrency cannot renumber
// them.
func TestAttributionJobsInvariant(t *testing.T) {
	points := make([]Options, 4)
	for i := range points {
		points[i] = attribOptions(Protocol([]Protocol{Pcl, Vcl, Mlog, Pcl}[i]))
		points[i].Seed = int64(i + 1)
	}
	seq, err := Sweep(points, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, err := Sweep(points, SweepOptions{Jobs: 4})
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	for i := range points {
		j1, j2 := attribJSON(t, seq[i].Attribution), attribJSON(t, par[i].Attribution)
		if !bytes.Equal(j1, j2) {
			t.Errorf("point %d: attribution differs between Jobs=1 and Jobs=4", i)
		}
	}
}

// TestAttributionUnderChaos runs the chaos harness with span tracing and
// requires the conservation invariant to hold alongside the recovery
// invariants.
func TestAttributionUnderChaos(t *testing.T) {
	o := attribOptions(Pcl)
	o.Servers = 3 // replication needs a replica set to spread over
	o.Replication = &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 2, RetryBackoff: time.Millisecond}
	rep, err := Chaos(o, ChaosSpec{
		Seed: 3, Kills: 3, ServerFrac: 0.3,
		From: 5 * time.Millisecond, Until: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Degraded == nil {
		if rep.Report.Attribution == nil {
			t.Fatal("chaos run lost its attribution")
		}
		if err := rep.Report.Attribution.Check(); err != nil {
			t.Fatalf("conservation under chaos: %v", err)
		}
	}
}

// TestMetricsSnapshotCounters runs with a snapshot period and checks the
// counter-sample events arrive, carry the fixed metric names, and render
// as Chrome counter tracks.
func TestMetricsSnapshotCounters(t *testing.T) {
	col := NewCollector()
	o := attribOptions(Pcl)
	o.MetricsSnapshot = 2 * time.Millisecond
	o.Sink = col
	if _, err := Run(o); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var samples int
	names := map[string]bool{}
	for _, ev := range col.Events() {
		if ev.Type == EvCounterSample {
			samples++
			names[ev.Detail] = true
		}
	}
	if samples == 0 {
		t.Fatal("no counter samples with MetricsSnapshot set")
	}
	for _, want := range []string{"markers.sent", "ckpt.local", "waves.committed"} {
		if !names[want] {
			t.Errorf("counter %q never sampled (got %v)", want, names)
		}
	}
	var trace bytes.Buffer
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Contains(trace.Bytes(), []byte(`"ph": "C"`)) {
		t.Error("Chrome trace carries no counter records")
	}
}

// TestChromeTraceFlowEvents checks span/cause stamps render as Perfetto
// flow arrows in the batch exporter.
func TestChromeTraceFlowEvents(t *testing.T) {
	col := NewCollector()
	o := attribOptions(Pcl)
	o.Sink = col
	if _, err := Run(o); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var trace bytes.Buffer
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			Id  uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var starts, finishes int
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "flow" {
			switch ev.Ph {
			case "s":
				starts++
			case "f":
				finishes++
			}
		}
	}
	if starts == 0 || finishes == 0 {
		t.Fatalf("no flow arrows in trace: %d starts, %d finishes", starts, finishes)
	}
	if finishes < starts {
		t.Errorf("every flow start needs a finish: %d starts, %d finishes", starts, finishes)
	}
}

// TestChromeStreamSink streams a run's trace and checks the document is
// valid JSON with the same instants a Collector-based export carries.
func TestChromeStreamSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeStreamSink(&buf)
	o := attribOptions(Vcl)
	o.MetricsSnapshot = 2 * time.Millisecond
	o.Sink = sink
	if _, err := Run(o); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("streamed trace is not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, ev := range doc.TraceEvents {
		kinds[ev.Ph]++
	}
	if kinds["b"] == 0 || kinds["e"] == 0 {
		t.Errorf("no async interval records: %v", kinds)
	}
	if kinds["C"] == 0 {
		t.Errorf("no counter records: %v", kinds)
	}
	if kinds["i"] == 0 || kinds["M"] == 0 {
		t.Errorf("missing instants or metadata: %v", kinds)
	}
}

// TestChromeStreamSinkDeterministic streams the same run twice and
// requires byte-identical documents.
func TestChromeStreamSinkDeterministic(t *testing.T) {
	stream := func() []byte {
		var buf bytes.Buffer
		sink := NewChromeStreamSink(&buf)
		o := attribOptions(Pcl)
		o.Sink = sink
		if _, err := Run(o); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	if one, two := stream(), stream(); !bytes.Equal(one, two) {
		t.Fatal("streamed trace differs across identical runs")
	}
}
