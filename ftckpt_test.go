package ftckpt

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ftckpt/internal/chaos"
	"ftckpt/internal/failure"
)

func TestRunBaseline(t *testing.T) {
	rep, err := Run(Options{Workload: "cg-real", NP: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completion <= 0 || rep.Checksum == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.Waves != 0 {
		t.Fatalf("baseline checkpointed: %+v", rep)
	}
}

func TestRunPclRecoveryViaFacade(t *testing.T) {
	base, err := Run(Options{Workload: "cg-real", NP: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Workload: "cg-real",
		NP:       4,
		Protocol: "pcl",
		Interval: 4 * time.Millisecond,
		Servers:  2,
		Seed:     1,
		Failures: []Failure{{At: 10 * time.Millisecond, Rank: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d", rep.Restarts)
	}
	if rep.Checksum != base.Checksum {
		t.Fatalf("recovered checksum %v != baseline %v", rep.Checksum, base.Checksum)
	}
	if rep.Waves == 0 || rep.CheckpointMB == 0 {
		t.Fatalf("no checkpoint activity: %+v", rep)
	}
}

func TestRunVclOnGrid(t *testing.T) {
	rep, err := Run(Options{
		Workload: "cg", Class: "A",
		NP:       16,
		Protocol: "vcl",
		Interval: 100 * time.Millisecond,
		Platform: "grid",
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Waves == 0 {
		t.Fatalf("no waves: %+v", rep)
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, w := range []Workload{WorkloadBT, WorkloadCG, WorkloadMG, WorkloadLU, WorkloadEP, WorkloadCGReal, WorkloadJacobi} {
		w := w
		t.Run(string(w), func(t *testing.T) {
			np := 4
			rep, err := Run(Options{Workload: w, Class: "A", NP: np, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Completion <= 0 {
				t.Fatalf("report %+v", rep)
			}
		})
	}
}

func TestRunMlogRecovery(t *testing.T) {
	base, err := Run(Options{Workload: "cg-real", NP: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Workload: "cg-real",
		NP:       4,
		Protocol: "mlog",
		Interval: 10 * time.Millisecond,
		Servers:  2,
		Seed:     9,
		Failures: []Failure{{At: base.Completion / 2, Rank: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d", rep.Restarts)
	}
	if rep.Checksum != base.Checksum {
		t.Fatalf("recovered checksum %v != %v", rep.Checksum, base.Checksum)
	}
	if rep.LoggedMessages == 0 {
		t.Fatal("no messages logged")
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	points := []Options{
		{Workload: "cg-real", NP: 4, Seed: 1},
		{Workload: "cg-real", NP: 4, Protocol: "pcl", Interval: 4 * time.Millisecond, Servers: 2, Seed: 1},
		{Workload: "cg-real", NP: 4, Protocol: "pcl", Interval: 8 * time.Millisecond, Servers: 2, Seed: 1},
		{Workload: "cg-real", NP: 4, Protocol: "vcl", Interval: 8 * time.Millisecond, Servers: 2, Seed: 1},
	}

	// Sequential ground truth: a plain loop of Run calls sharing one
	// registry.
	seqReg := NewMetrics()
	var seqReps []Report
	for _, p := range points {
		p.Metrics = seqReg
		rep, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		seqReps = append(seqReps, rep)
	}

	parReg := NewMetrics()
	parReps, err := Sweep(points, SweepOptions{Jobs: 4, Metrics: parReg})
	if err != nil {
		t.Fatal(err)
	}

	// Reports must match field for field.  The Metrics pointers differ by
	// construction (shared registry vs per-point registries), so blank
	// them before comparing.
	for i := range seqReps {
		seqReps[i].Metrics = nil
		parReps[i].Metrics = nil
	}
	if !reflect.DeepEqual(seqReps, parReps) {
		t.Errorf("reports differ:\nseq: %+v\npar: %+v", seqReps, parReps)
	}

	var seqJSON, parJSON strings.Builder
	if err := seqReg.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := parReg.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if seqJSON.String() != parJSON.String() {
		t.Errorf("merged sweep metrics differ from shared-registry sequential metrics:\nseq: %s\npar: %s",
			seqJSON.String(), parJSON.String())
	}
}

func TestSweepErrorNamesPoint(t *testing.T) {
	points := []Options{
		{Workload: "cg-real", NP: 4, Seed: 1},
		{Workload: "nope", NP: 4, Seed: 1},
	}
	_, err := Sweep(points, SweepOptions{Jobs: 2})
	if err == nil {
		t.Fatal("bad point accepted")
	}
	if !strings.Contains(err.Error(), "sweep point 1") {
		t.Fatalf("error does not name the point: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Workload: "nope", NP: 4}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Options{Workload: "bt", NP: 4, Platform: "token-ring"}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := Run(Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func chaosOpts(replicas int) Options {
	return Options{
		Workload:     "cg-real",
		NP:           4,
		Protocol:     "pcl",
		Interval:     4 * time.Millisecond,
		Servers:  2,
		Replication: &ReplicationSpec{
			Replicas:     replicas,
			WriteQuorum:  1,
			StoreRetries: 2,
			RetryBackoff: time.Millisecond,
		},
		Seed: 1,
	}
}

// chaosSeed deterministically scans for a schedule with one server kill
// followed by a process kill — the scenario replication exists for.
func chaosSeed(t *testing.T, o Options, sp ChaosSpec) ChaosSpec {
	t.Helper()
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 200; seed++ {
		sp.Seed = seed
		plan, err := chaos.Schedule(chaos.Spec{
			Seed: sp.Seed, Kills: sp.Kills,
			ServerFrac: sp.ServerFrac, NodeFrac: sp.NodeFrac,
			From: sp.From, Until: sp.Until,
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		servers := 0
		var srvAt time.Duration
		for _, ev := range plan {
			if ev.Kind == failure.KindServer {
				servers++
				srvAt = ev.At
			}
		}
		ranksAfter := 0
		for _, ev := range plan {
			if ev.Kind == failure.KindRank && ev.At > srvAt {
				ranksAfter++
			}
		}
		if servers == 1 && ranksAfter >= 1 {
			return sp
		}
	}
	t.Fatal("no suitable chaos seed in 1..200")
	return sp
}

func TestChaosRecoveryViaFacade(t *testing.T) {
	o := chaosOpts(2)
	// The failure-free run completes at ~17ms (2 waves): kills inside
	// [6ms, 14ms) land after the first commit and before completion.
	sp := chaosSeed(t, o, ChaosSpec{Kills: 2, ServerFrac: 0.5,
		From: 6 * time.Millisecond, Until: 14 * time.Millisecond})
	rep, err := Chaos(o, sp)
	if err != nil {
		t.Fatalf("seed %d: %v", sp.Seed, err)
	}
	if rep.Degraded != nil {
		t.Fatalf("seed %d degraded despite replication: %v (plan %v)", sp.Seed, rep.Degraded, rep.Plan)
	}
	if !rep.OK() {
		t.Fatalf("seed %d violations: %v", sp.Seed, rep.Violations)
	}
	if rep.Report.ServerFailures != 1 || rep.Report.Restarts == 0 {
		t.Fatalf("seed %d: serverFailures=%d restarts=%d",
			sp.Seed, rep.Report.ServerFailures, rep.Report.Restarts)
	}
	if rep.Checksum == 0 || rep.Checksum != rep.Reference {
		t.Fatalf("seed %d: checksum %v, reference %v", sp.Seed, rep.Checksum, rep.Reference)
	}
}

func TestChaosDegradedViaFacade(t *testing.T) {
	o := chaosOpts(1)
	o.Replication.StoreRetries = 0
	sp := chaosSeed(t, o, ChaosSpec{Kills: 2, ServerFrac: 0.5,
		From: 6 * time.Millisecond, Until: 14 * time.Millisecond})
	rep, err := Chaos(o, sp)
	if err != nil {
		t.Fatalf("seed %d: %v", sp.Seed, err)
	}
	if rep.Degraded == nil {
		t.Fatalf("seed %d recovered with single-copy images lost (plan %v)", sp.Seed, rep.Plan)
	}
	if rep.Degraded.Err == nil {
		t.Fatalf("degraded error lacks a cause: %+v", rep.Degraded)
	}
	if !rep.OK() {
		t.Fatalf("seed %d violations: %v", sp.Seed, rep.Violations)
	}
}
