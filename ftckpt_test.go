package ftckpt

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRunBaseline(t *testing.T) {
	rep, err := Run(Options{Workload: "cg-real", NP: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completion <= 0 || rep.Checksum == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.Waves != 0 {
		t.Fatalf("baseline checkpointed: %+v", rep)
	}
}

func TestRunPclRecoveryViaFacade(t *testing.T) {
	base, err := Run(Options{Workload: "cg-real", NP: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Workload: "cg-real",
		NP:       4,
		Protocol: "pcl",
		Interval: 4 * time.Millisecond,
		Servers:  2,
		Seed:     1,
		Failures: []Failure{{At: 10 * time.Millisecond, Rank: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d", rep.Restarts)
	}
	if rep.Checksum != base.Checksum {
		t.Fatalf("recovered checksum %v != baseline %v", rep.Checksum, base.Checksum)
	}
	if rep.Waves == 0 || rep.CheckpointMB == 0 {
		t.Fatalf("no checkpoint activity: %+v", rep)
	}
}

func TestRunVclOnGrid(t *testing.T) {
	rep, err := Run(Options{
		Workload: "cg", Class: "A",
		NP:       16,
		Protocol: "vcl",
		Interval: 100 * time.Millisecond,
		Platform: "grid",
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Waves == 0 {
		t.Fatalf("no waves: %+v", rep)
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, w := range []string{"bt", "cg", "mg", "lu", "ep", "cg-real", "jacobi"} {
		w := w
		t.Run(w, func(t *testing.T) {
			np := 4
			rep, err := Run(Options{Workload: w, Class: "A", NP: np, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Completion <= 0 {
				t.Fatalf("report %+v", rep)
			}
		})
	}
}

func TestRunMlogRecovery(t *testing.T) {
	base, err := Run(Options{Workload: "cg-real", NP: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Workload: "cg-real",
		NP:       4,
		Protocol: "mlog",
		Interval: 10 * time.Millisecond,
		Servers:  2,
		Seed:     9,
		Failures: []Failure{{At: base.Completion / 2, Rank: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d", rep.Restarts)
	}
	if rep.Checksum != base.Checksum {
		t.Fatalf("recovered checksum %v != %v", rep.Checksum, base.Checksum)
	}
	if rep.LoggedMessages == 0 {
		t.Fatal("no messages logged")
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	points := []Options{
		{Workload: "cg-real", NP: 4, Seed: 1},
		{Workload: "cg-real", NP: 4, Protocol: "pcl", Interval: 4 * time.Millisecond, Servers: 2, Seed: 1},
		{Workload: "cg-real", NP: 4, Protocol: "pcl", Interval: 8 * time.Millisecond, Servers: 2, Seed: 1},
		{Workload: "cg-real", NP: 4, Protocol: "vcl", Interval: 8 * time.Millisecond, Servers: 2, Seed: 1},
	}

	// Sequential ground truth: a plain loop of Run calls sharing one
	// registry.
	seqReg := NewMetrics()
	var seqReps []Report
	for _, p := range points {
		p.Metrics = seqReg
		rep, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		seqReps = append(seqReps, rep)
	}

	parReg := NewMetrics()
	parReps, err := Sweep(points, SweepOptions{Jobs: 4, Metrics: parReg})
	if err != nil {
		t.Fatal(err)
	}

	// Reports must match field for field.  The Metrics pointers differ by
	// construction (shared registry vs per-point registries), so blank
	// them before comparing.
	for i := range seqReps {
		seqReps[i].Metrics = nil
		parReps[i].Metrics = nil
	}
	if !reflect.DeepEqual(seqReps, parReps) {
		t.Errorf("reports differ:\nseq: %+v\npar: %+v", seqReps, parReps)
	}

	var seqJSON, parJSON strings.Builder
	if err := seqReg.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := parReg.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if seqJSON.String() != parJSON.String() {
		t.Errorf("merged sweep metrics differ from shared-registry sequential metrics:\nseq: %s\npar: %s",
			seqJSON.String(), parJSON.String())
	}
}

func TestSweepErrorNamesPoint(t *testing.T) {
	points := []Options{
		{Workload: "cg-real", NP: 4, Seed: 1},
		{Workload: "nope", NP: 4, Seed: 1},
	}
	_, err := Sweep(points, SweepOptions{Jobs: 2})
	if err == nil {
		t.Fatal("bad point accepted")
	}
	if !strings.Contains(err.Error(), "sweep point 1") {
		t.Fatalf("error does not name the point: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Workload: "nope", NP: 4}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Options{Workload: "bt", NP: 4, Platform: "token-ring"}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := Run(Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}
