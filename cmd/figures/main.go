// Command figures regenerates the data behind every figure of the paper's
// evaluation (Figs. 5–10 and the §5.4 NetPIPE characterization), printing
// the same rows/series the paper plots.
//
//	figures -fig 5          # one figure
//	figures -fig all -quick # smoke-test everything in seconds
//	figures -fig all -jobs 8
//
// Sweep points are independent simulations, so -jobs N (default
// runtime.NumCPU()) runs them concurrently; stdout, -v trace output and
// -metrics-dir files are byte-identical for any -jobs value with the
// same seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"ftckpt"
	"ftckpt/internal/expt"
	"ftckpt/internal/span"
)

// out receives every table; -bench-sweep redirects it to io.Discard.
var out io.Writer = os.Stdout

func main() {
	log.SetFlags(0)
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, 10, netpipe, recovery, storage, all")
		quick  = flag.Bool("quick", false, "shrink workloads (~10x) — shapes survive, absolute values do not")
		seed   = flag.Int64("seed", 1, "simulation seed")
		v      = flag.Bool("v", false, "trace per-run progress")
		jobs   = flag.Int("jobs", runtime.NumCPU(), "concurrent sweep points per figure (1 = sequential; output is identical either way)")
		shards = flag.Int("shards", 0, "event-kernel shards per simulation (parallel staging workers); 0/1 = sequential, output is identical either way")
		metDir = flag.String("metrics-dir", "", "also write each figure's aggregated metrics as <dir>/fig<N>.metrics.json")
		attrib = flag.Bool("attrib", false, "trace causal spans and append each figure's merged per-phase overhead attribution")
		bench  = flag.String("bench-sweep", "", "time the selected figures sequentially and at -jobs, write the wall-clock baseline JSON to this file (suppresses tables)")
		core   = flag.String("bench-core", "", "measure the hot-path core benchmarks (kernel events + one run per protocol and size) and write the JSON document to this file")
		coreNP = flag.Int("bench-core-np", 1024, "largest NP measured by -bench-core")
		check  = flag.String("bench-core-check", "", "re-measure the core smoke subset and fail if allocations regress >25% vs this committed BENCH_core.json")
	)
	flag.Parse()

	if *core != "" {
		if err := benchCore(*core, *coreNP); err != nil {
			fail(err)
		}
		return
	}
	if *check != "" {
		if err := benchCoreCheck(*check); err != nil {
			fail(err)
		}
		return
	}

	o := expt.Options{Quick: *quick, Seed: *seed, Jobs: *jobs, Shards: *shards}
	if *v {
		o.Trace = log.Printf
	}

	runners := map[string]func(expt.Options) error{
		"5":       fig5,
		"6":       fig6,
		"7":       fig7,
		"8":       fig8,
		"9":       fig9,
		"10":      fig10,
		"netpipe":  netpipe,
		"recovery": recovery,
		"storage":  storage,
	}
	order := []string{"netpipe", "5", "6", "7", "8", "9", "10", "recovery", "storage"}

	var names []string
	if *fig == "all" {
		names = order
	} else {
		if _, ok := runners[*fig]; !ok {
			fail(fmt.Errorf("unknown figure %q", *fig))
		}
		names = []string{*fig}
	}

	if *bench != "" {
		if err := benchSweep(*bench, names, runners, o); err != nil {
			fail(err)
		}
		return
	}

	// runOne regenerates one figure; with -metrics-dir every run of the
	// figure folds into one fresh registry, dumped beside the data once
	// the whole sweep has succeeded (atomically: temp file + rename, so a
	// failed or interrupted figure never leaves a partial file behind).
	runOne := func(name string) error {
		if *metDir != "" {
			o.Metrics = ftckpt.NewMetrics()
		}
		if *attrib {
			o.Attrib = &span.Attribution{}
		}
		if err := runners[name](o); err != nil {
			return err
		}
		// The attribution accumulator merged every run of the figure in
		// point order; a zero completion means the figure ran no simulated
		// jobs (netpipe), so there is nothing to attribute.
		if *attrib && o.Attrib.Completion > 0 {
			if err := o.Attrib.Check(); err != nil {
				return fmt.Errorf("fig %s attribution conservation: %w", name, err)
			}
			fmt.Fprintf(out, "\n-- overhead attribution, merged across the figure's sweep points --\n")
			if err := o.Attrib.WriteTable(out); err != nil {
				return err
			}
		}
		if *metDir == "" {
			return nil
		}
		base := name
		if name != "netpipe" {
			base = "fig" + name
		}
		path, err := writeMetrics(*metDir, base, o.Metrics)
		if err == nil {
			fmt.Fprintf(out, "metrics: %s\n", path)
		}
		return err
	}

	for _, name := range names {
		if err := runOne(name); err != nil {
			fail(err)
		}
	}
}

// writeMetrics dumps a figure's registry as <dir>/<base>.metrics.json,
// atomically: the JSON is written to a temp file in the same directory
// and renamed into place, so readers never observe a partial file.  The
// directory is created on first use (not before any run has succeeded).
func writeMetrics(dir, base string, m *ftckpt.Metrics) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, base+".metrics.json")
	tmp, err := os.CreateTemp(dir, base+".metrics.*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := m.WriteJSON(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// benchSweep times the selected figures twice — sequentially and with the
// configured job count — and records the wall-clock baseline as JSON (the
// repo's BENCH_sweep.json trajectory).
func benchSweep(path string, names []string, runners map[string]func(expt.Options) error, o expt.Options) error {
	out = io.Discard
	o.Metrics = nil
	run := func(jobs int) (time.Duration, error) {
		po := o
		po.Jobs = jobs
		start := time.Now()
		for _, name := range names {
			if err := runners[name](po); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	seq, err := run(1)
	if err != nil {
		return err
	}
	parJobs := o.Jobs
	if parJobs <= 1 {
		parJobs = runtime.NumCPU()
	}
	par, err := run(parJobs)
	if err != nil {
		return err
	}
	doc := struct {
		Cmd       string   `json:"cmd"`
		Figures   []string `json:"figures"`
		Quick     bool     `json:"quick"`
		Seed      int64    `json:"seed"`
		CPUs      int      `json:"cpus"`
		JobsSeq   int      `json:"jobs_sequential"`
		WallSeqMS float64  `json:"wall_sequential_ms"`
		JobsPar   int      `json:"jobs_parallel"`
		WallParMS float64  `json:"wall_parallel_ms"`
		Speedup   float64  `json:"speedup"`
	}{
		Cmd: "figures -bench-sweep", Figures: names, Quick: o.Quick, Seed: o.Seed,
		CPUs: runtime.NumCPU(), JobsSeq: 1, WallSeqMS: float64(seq.Milliseconds()),
		JobsPar: parJobs, WallParMS: float64(par.Milliseconds()),
		Speedup: float64(seq) / float64(par),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "figures: sweep baseline %s: seq=%v jobs=%d par=%v speedup=%.2fx\n",
			path, seq.Round(time.Millisecond), parJobs, par.Round(time.Millisecond), doc.Speedup)
	}
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func table(header string) (*tabwriter.Writer, func()) {
	fmt.Fprintln(out)
	fmt.Fprintln(out, header)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	return w, func() { w.Flush() }
}

func fig5(o expt.Options) error {
	rows, err := expt.Fig5(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 5: checkpoint servers — BT.B, 64 processes, 30s between waves ==")
	defer done()
	fmt.Fprintln(w, "servers\tpcl time\tpcl waves\tvcl time\tvcl waves")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\n",
			r.Servers, expt.FmtTime(r.PclTime), r.PclWaves, expt.FmtTime(r.VclTime), r.VclWaves)
	}
	return nil
}

func fig6(o expt.Options) error {
	rows, err := expt.Fig6(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 6: execution time vs process count, four checkpoint frequencies — BT.B, 9 servers ==")
	defer done()
	fmt.Fprintln(w, "interval\tnp\tppn\tno-ckpt\tpcl\tpcl waves\tvcl\tvcl waves")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%d\t%s\t%s\t%d\t%s\t%d\n",
			r.Interval, r.NP, r.PPN, expt.FmtTime(r.None),
			expt.FmtTime(r.Pcl), r.PclWaves, expt.FmtTime(r.Vcl), r.VclWaves)
	}
	return nil
}

func fig7(o expt.Options) error {
	rows, err := expt.Fig7(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 7: checkpoint waves on a high-speed network — CG.C, 64 processes, Myrinet, 2 servers ==")
	defer done()
	fmt.Fprintln(w, "stack\tinterval\twaves\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%s\n", r.Stack, r.Interval, r.Waves, expt.FmtTime(r.Time))
	}
	return nil
}

func fig8(o expt.Options) error {
	rows, err := expt.Fig8(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 8: system size vs checkpoint waves — CG.C, Pcl/Nemesis on Myrinet ==")
	defer done()
	fmt.Fprintln(w, "np\tppn\tinterval\twaves\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%s\n", r.NP, r.PPN, r.Interval, r.Waves, expt.FmtTime(r.Time))
	}
	return nil
}

func fig9(o expt.Options) error {
	rows, err := expt.Fig9(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 9: checkpoint frequency at large scale — BT.B, 400 processes on the grid, Pcl ==")
	defer done()
	fmt.Fprintln(w, "interval\twaves\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%s\n", r.Interval, r.Waves, expt.FmtTime(r.Time))
	}
	return nil
}

func fig10(o expt.Options) error {
	rows, err := expt.Fig10(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 10: large scale on the grid — BT.B, Pcl, no-ckpt vs periodic waves ==")
	defer done()
	fmt.Fprintln(w, "np\tno-ckpt\twith waves\twaves")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\n", r.NP, expt.FmtTime(r.NoCkpt), expt.FmtTime(r.Ckpt60), r.Waves)
	}
	return nil
}

func recovery(o expt.Options) error {
	rows, err := expt.Recovery(o)
	if err != nil {
		return err
	}
	w, done := table("== Recovery modes: rollback-restart vs ULFM in-job repair — Jacobi, 16 processes, Pcl ==")
	defer done()
	fmt.Fprintln(w, "kills\trestart time\trestarts\tulfm time\trepairs\tulfm restarts\tlost work\trecovered")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\t%d\t%v\t%.4f\n",
			r.Kills, expt.FmtTime(r.RestartTime), r.Restarts, expt.FmtTime(r.UlfmTime),
			r.Repairs, r.UlfmRestarts, r.LostWork, r.RecoveredWork)
	}
	return nil
}

func storage(o expt.Options) error {
	study, err := expt.Storage(o)
	if err != nil {
		return err
	}
	w, done := table("== Storage hierarchy: optimal checkpoint interval per level — CG, 16 processes, Pcl ==")
	fmt.Fprintln(w, "config\tcost C\tsystem MTBF\tyoung\tdaly\tsim best\tbest time")
	for _, r := range study.Opt {
		fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%v\t%v\t%s\n",
			r.Config, r.Cost, r.MTTF, r.Young, r.Daly, r.Best, expt.FmtTime(r.BestTime))
	}
	done()
	w, done = table("== Storage hierarchy: level saturation at the simulated-optimal interval ==")
	defer done()
	fmt.Fprintln(w, "config\tlevel\tMB\tcapacity MB/s\tutil\tevictions")
	for _, r := range study.Sat {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.4f\t%d\n",
			r.Config, r.Level, r.MB, r.Capacity, r.Util, r.Evictions)
	}
	return nil
}

func netpipe(o expt.Options) error {
	rows, err := expt.Netpipe(o)
	if err != nil {
		return err
	}
	w, done := table("== NetPIPE (§5.4): intra- vs inter-cluster characterization of the grid ==")
	defer done()
	fmt.Fprintln(w, "size\tintra lat\tinter lat\tintra MB/s\tinter MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%.1f\t%.1f\n", r.Size, r.IntraRTT, r.InterRTT, r.IntraBW, r.InterBW)
	}
	return nil
}
