// Command figures regenerates the data behind every figure of the paper's
// evaluation (Figs. 5–10 and the §5.4 NetPIPE characterization), printing
// the same rows/series the paper plots.
//
//	figures -fig 5          # one figure
//	figures -fig all -quick # smoke-test everything in seconds
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"

	"ftckpt"
	"ftckpt/internal/expt"
)

func main() {
	log.SetFlags(0)
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, 10, netpipe, all")
		quick  = flag.Bool("quick", false, "shrink workloads (~10x) — shapes survive, absolute values do not")
		seed   = flag.Int64("seed", 1, "simulation seed")
		v      = flag.Bool("v", false, "trace per-run progress")
		metDir = flag.String("metrics-dir", "", "also write each figure's aggregated metrics as <dir>/fig<N>.metrics.json")
	)
	flag.Parse()

	o := expt.Options{Quick: *quick, Seed: *seed}
	if *v {
		o.Trace = log.Printf
	}
	if *metDir != "" {
		if err := os.MkdirAll(*metDir, 0o755); err != nil {
			fail(err)
		}
	}

	runners := map[string]func(expt.Options) error{
		"5":       fig5,
		"6":       fig6,
		"7":       fig7,
		"8":       fig8,
		"9":       fig9,
		"10":      fig10,
		"netpipe": netpipe,
	}
	order := []string{"netpipe", "5", "6", "7", "8", "9", "10"}

	// runOne regenerates one figure; with -metrics-dir every run of the
	// figure folds into one fresh registry, dumped beside the data.
	runOne := func(name string) error {
		if *metDir != "" {
			o.Metrics = ftckpt.NewMetrics()
		}
		if err := runners[name](o); err != nil {
			return err
		}
		if *metDir == "" {
			return nil
		}
		base := name
		if name != "netpipe" {
			base = "fig" + name
		}
		path := filepath.Join(*metDir, base+".metrics.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = o.Metrics.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Printf("metrics: %s\n", path)
		}
		return err
	}

	if *fig == "all" {
		for _, name := range order {
			if err := runOne(name); err != nil {
				fail(err)
			}
		}
		return
	}
	if _, ok := runners[*fig]; !ok {
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
	if err := runOne(*fig); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func table(header string) (*tabwriter.Writer, func()) {
	fmt.Println()
	fmt.Println(header)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	return w, func() { w.Flush() }
}

func fig5(o expt.Options) error {
	rows, err := expt.Fig5(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 5: checkpoint servers — BT.B, 64 processes, 30s between waves ==")
	defer done()
	fmt.Fprintln(w, "servers\tpcl time\tpcl waves\tvcl time\tvcl waves")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\n",
			r.Servers, expt.FmtTime(r.PclTime), r.PclWaves, expt.FmtTime(r.VclTime), r.VclWaves)
	}
	return nil
}

func fig6(o expt.Options) error {
	rows, err := expt.Fig6(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 6: execution time vs process count, four checkpoint frequencies — BT.B, 9 servers ==")
	defer done()
	fmt.Fprintln(w, "interval\tnp\tppn\tno-ckpt\tpcl\tpcl waves\tvcl\tvcl waves")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%d\t%s\t%s\t%d\t%s\t%d\n",
			r.Interval, r.NP, r.PPN, expt.FmtTime(r.None),
			expt.FmtTime(r.Pcl), r.PclWaves, expt.FmtTime(r.Vcl), r.VclWaves)
	}
	return nil
}

func fig7(o expt.Options) error {
	rows, err := expt.Fig7(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 7: checkpoint waves on a high-speed network — CG.C, 64 processes, Myrinet, 2 servers ==")
	defer done()
	fmt.Fprintln(w, "stack\tinterval\twaves\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%s\n", r.Stack, r.Interval, r.Waves, expt.FmtTime(r.Time))
	}
	return nil
}

func fig8(o expt.Options) error {
	rows, err := expt.Fig8(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 8: system size vs checkpoint waves — CG.C, Pcl/Nemesis on Myrinet ==")
	defer done()
	fmt.Fprintln(w, "np\tppn\tinterval\twaves\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%s\n", r.NP, r.PPN, r.Interval, r.Waves, expt.FmtTime(r.Time))
	}
	return nil
}

func fig9(o expt.Options) error {
	rows, err := expt.Fig9(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 9: checkpoint frequency at large scale — BT.B, 400 processes on the grid, Pcl ==")
	defer done()
	fmt.Fprintln(w, "interval\twaves\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%s\n", r.Interval, r.Waves, expt.FmtTime(r.Time))
	}
	return nil
}

func fig10(o expt.Options) error {
	rows, err := expt.Fig10(o)
	if err != nil {
		return err
	}
	w, done := table("== Fig. 10: large scale on the grid — BT.B, Pcl, no-ckpt vs periodic waves ==")
	defer done()
	fmt.Fprintln(w, "np\tno-ckpt\twith waves\twaves")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\n", r.NP, expt.FmtTime(r.NoCkpt), expt.FmtTime(r.Ckpt60), r.Waves)
	}
	return nil
}

func netpipe(o expt.Options) error {
	rows, err := expt.Netpipe(o)
	if err != nil {
		return err
	}
	w, done := table("== NetPIPE (§5.4): intra- vs inter-cluster characterization of the grid ==")
	defer done()
	fmt.Fprintln(w, "size\tintra lat\tinter lat\tintra MB/s\tinter MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%.1f\t%.1f\n", r.Size, r.IntraRTT, r.InterRTT, r.IntraBW, r.InterBW)
	}
	return nil
}
