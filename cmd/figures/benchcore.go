package main

// -bench-core / -bench-core-check: the hot-path core benchmark harness.
//
// -bench-core measures the simulator's end-to-end macro benchmark (one
// full fault-tolerant run per protocol and size, mirroring BenchmarkRun in
// bench_core_test.go — keep the two option sets in sync) plus the kernel
// event micro benchmark, and writes the numbers as a JSON document.  The
// committed BENCH_core.json keeps two such documents — the measurement
// before and after the event-queue/allocation overhaul — as the repo's
// recorded trajectory.
//
// -bench-core-check re-measures a smoke subset and fails (exit 1) when
// allocations regress more than 25% against the committed "after"
// document: wall-clock is hardware-noisy, so CI gates on allocs/op, which
// is deterministic for a deterministic simulator.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ftckpt"
	"ftckpt/internal/sim"
)

type corePoint struct {
	Bench string `json:"bench"`           // "kernel-events" or "run"
	Proto string `json:"proto,omitempty"` // run: protocol
	NP    int    `json:"np,omitempty"`    // run: process count
	// WallMS is the wall-clock of the whole measurement; NsPerOp the
	// per-event cost (kernel-events only).
	WallMS  float64 `json:"wall_ms"`
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp / BytesPerOp count heap allocations per op: per event
	// for kernel-events (fractional — the Go benchmark framework's
	// integer truncation hides sub-1 values), per full run for "run".
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	VirtS       float64 `json:"virt_s,omitempty"`
	Waves       int     `json:"waves,omitempty"`
}

type coreDoc struct {
	Cmd    string      `json:"cmd"`
	Go     string      `json:"go"`
	CPUs   int         `json:"cpus"`
	MaxNP  int         `json:"max_np"`
	Points []corePoint `json:"points"`
}

// coreFile is the committed BENCH_core.json shape: the before/after pair
// recorded across the hot-path overhaul.
type coreFile struct {
	Before *coreDoc `json:"before,omitempty"`
	After  *coreDoc `json:"after,omitempty"`
}

// coreRunOpts mirrors benchRunOpts in bench_core_test.go.
func coreRunOpts(proto string, np int) ftckpt.Options {
	intervals := map[int]time.Duration{
		64:   8 * time.Second,
		256:  2 * time.Second,
		1024: 400 * time.Millisecond,
	}
	interval := intervals[np]
	if proto == "mlog" && np == 1024 {
		interval = 8 * time.Second
	}
	return ftckpt.Options{
		Workload:        ftckpt.WorkloadBT,
		Class:           ftckpt.ClassA,
		NP:              np,
		ProcsPerNode:    2,
		Protocol:        ftckpt.Protocol(proto),
		Interval:        interval,
		Servers:         4,
		Seed:            1,
		VclProcessLimit: -1,
	}
}

// measureKernelEvents mirrors BenchmarkKernelEvents: a steady population
// of 1024 pending timers, each firing rescheduling itself, measured over a
// fixed number of dispatches.
func measureKernelEvents() (corePoint, error) {
	const ops = 2_000_000
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	k := sim.New(1)
	remaining := ops
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			k.After(sim.Time(1+k.Rand().Intn(1000))*time.Microsecond, tick)
		}
	}
	for i := 0; i < 1024; i++ {
		k.After(sim.Time(1+k.Rand().Intn(1000))*time.Microsecond, tick)
	}
	if err := k.Run(); err != nil {
		return corePoint{}, fmt.Errorf("kernel-events: %w", err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return corePoint{
		Bench:       "kernel-events",
		WallMS:      float64(wall.Milliseconds()),
		NsPerOp:     float64(wall.Nanoseconds()) / ops,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / ops,
	}, nil
}

// measureRun times one complete fault-tolerant run.
func measureRun(proto string, np int) (corePoint, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	rep, err := ftckpt.Run(coreRunOpts(proto, np))
	if err != nil {
		return corePoint{}, fmt.Errorf("run proto=%s np=%d: %w", proto, np, err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return corePoint{
		Bench:       "run",
		Proto:       proto,
		NP:          np,
		WallMS:      float64(wall.Nanoseconds()) / 1e6,
		AllocsPerOp: float64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  float64(m1.TotalAlloc - m0.TotalAlloc),
		VirtS:       rep.Completion.Seconds(),
		Waves:       rep.Waves,
	}, nil
}

func coreMeasure(points [][2]any) (*coreDoc, error) {
	doc := &coreDoc{
		Cmd:  "figures -bench-core",
		Go:   runtime.Version(),
		CPUs: runtime.NumCPU(),
	}
	// Warm up the process (thread pool, heap target, page cache) with one
	// unmeasured small run: the first simulation in a fresh process is
	// consistently 20-50% slower than steady state, which would bias
	// whichever matrix point happens to run first.
	if len(points) > 0 {
		if _, err := ftckpt.Run(coreRunOpts("pcl", 64)); err != nil {
			return nil, err
		}
	}
	ke, err := measureKernelEvents()
	if err != nil {
		return nil, err
	}
	doc.Points = append(doc.Points, ke)
	fmt.Fprintf(os.Stderr, "figures: %-28s %8.1f ns/op  %7.3f allocs/op  %8.1f B/op\n",
		"kernel-events", ke.NsPerOp, ke.AllocsPerOp, ke.BytesPerOp)
	for _, pt := range points {
		proto, np := pt[0].(string), pt[1].(int)
		p, err := measureRun(proto, np)
		if err != nil {
			return nil, err
		}
		if p.NP > doc.MaxNP {
			doc.MaxNP = p.NP
		}
		doc.Points = append(doc.Points, p)
		fmt.Fprintf(os.Stderr, "figures: %-28s %8.0f ms  %12.0f allocs  %6.1f virt-s  %d waves\n",
			fmt.Sprintf("run proto=%s np=%d", proto, np), p.WallMS, p.AllocsPerOp, p.VirtS, p.Waves)
	}
	return doc, nil
}

// benchCore measures the full matrix up to maxNP and writes the document.
func benchCore(path string, maxNP int) error {
	var pts [][2]any
	for _, proto := range []string{"pcl", "vcl", "mlog"} {
		for _, np := range []int{64, 256, 1024} {
			if np <= maxNP {
				pts = append(pts, [2]any{proto, np})
			}
		}
	}
	doc, err := coreMeasure(pts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "figures: core benchmark document written to %s\n", path)
	}
	return err
}

// benchCoreCheck measures the smoke subset and compares allocations
// against the committed document's "after" section.  The subset keeps CI
// fast while still covering every protocol and the NP=1024 scaling point
// the overhaul targets.
func benchCoreCheck(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file coreFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := file.After
	if base == nil {
		// Accept a flat document too (a file written by -bench-core).
		var flat coreDoc
		if err := json.Unmarshal(raw, &flat); err != nil || len(flat.Points) == 0 {
			return fmt.Errorf("%s: no \"after\" section and not a flat core document", path)
		}
		base = &flat
	}
	find := func(bench, proto string, np int) *corePoint {
		for i := range base.Points {
			p := &base.Points[i]
			if p.Bench == bench && p.Proto == proto && p.NP == np {
				return p
			}
		}
		return nil
	}
	smoke := [][2]any{{"pcl", 64}, {"vcl", 64}, {"mlog", 64}, {"pcl", 256}, {"pcl", 1024}}
	doc, err := coreMeasure(smoke)
	if err != nil {
		return err
	}
	bad := 0
	for _, p := range doc.Points {
		b := find(p.Bench, p.Proto, p.NP)
		if b == nil {
			fmt.Fprintf(os.Stderr, "figures: %s proto=%s np=%d: no committed baseline point — add it with -bench-core\n",
				p.Bench, p.Proto, p.NP)
			bad++
			continue
		}
		// 25% relative headroom plus a small absolute slack: the
		// kernel-events baseline is ~1e-5 allocs/op (runtime background
		// work), where a pure ratio would flag noise.  0.01 allocs/op is
		// far below any real per-event regression and is negligible
		// against the run points' millions.
		limit := b.AllocsPerOp*1.25 + 0.01
		verdict := "ok"
		if p.AllocsPerOp > limit {
			verdict = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "figures: %-12s proto=%-4s np=%-5d allocs %12.3f vs baseline %12.3f (limit %12.3f) %s\n",
			p.Bench, p.Proto, p.NP, p.AllocsPerOp, b.AllocsPerOp, limit, verdict)
	}
	if bad > 0 {
		return fmt.Errorf("allocation regression: %d point(s) exceed 1.25x the committed baseline in %s", bad, path)
	}
	fmt.Fprintln(os.Stderr, "figures: core allocations within 25% of the committed baseline")
	return nil
}
