package main

// -bench-core / -bench-core-check: the hot-path core benchmark harness.
//
// -bench-core measures the simulator's end-to-end macro benchmark (one
// full fault-tolerant run per protocol and size, mirroring BenchmarkRun in
// bench_core_test.go — keep the two option sets in sync) plus the kernel
// event micro benchmark, and writes the numbers as a JSON document.  The
// committed BENCH_core.json keeps two such documents — the measurement
// before and after the event-queue/allocation overhaul — as the repo's
// recorded trajectory.
//
// -bench-core-check re-measures a smoke subset and fails (exit 1) when
// allocations regress more than 25% against the committed "after"
// document: wall-clock is hardware-noisy, so CI gates on allocs/op, which
// is deterministic for a deterministic simulator.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ftckpt"
	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/obs"
	"ftckpt/internal/platform"
	"ftckpt/internal/sim"
)

type corePoint struct {
	Bench  string `json:"bench"`            // "kernel-events", "run" or "repair"
	Proto  string `json:"proto,omitempty"`  // run: protocol
	NP     int    `json:"np,omitempty"`     // run: process count
	Shards int    `json:"shards,omitempty"` // run: kernel shards (0 = sequential)
	// WallMS is the wall-clock of the whole measurement; NsPerOp the
	// per-event cost (kernel-events only).
	WallMS  float64 `json:"wall_ms"`
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp / BytesPerOp count heap allocations per op: per event
	// for kernel-events (fractional — the Go benchmark framework's
	// integer truncation hides sub-1 values), per full run for "run".
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	VirtS       float64 `json:"virt_s,omitempty"`
	Waves       int     `json:"waves,omitempty"`
	// RepairMS and Recovered belong to the "repair" bench point: the
	// virtual latency of one ULFM in-job repair, from the failure report
	// (EvProcFailed) to the world resuming (EvRepairEnd), and the
	// recovered-work fraction of the run.  Virtual numbers are exactly
	// reproducible, so drift in either means the repair path changed.
	RepairMS  float64 `json:"repair_ms,omitempty"`
	Recovered float64 `json:"recovered,omitempty"`
	// Speedup is sequential wall / sharded wall for the same proto and NP,
	// set on shard points when the matching sequential point was measured
	// in the same document.  Recorded, and gated by -bench-core-check: a
	// shard point whose speedup falls >25% below the committed baseline's
	// fails CI.
	Speedup float64 `json:"speedup,omitempty"`
}

type coreDoc struct {
	Cmd    string      `json:"cmd"`
	Go     string      `json:"go"`
	CPUs   int         `json:"cpus"`
	MaxNP  int         `json:"max_np"`
	Points []corePoint `json:"points"`
}

// coreFile is the committed BENCH_core.json shape: the before/after pair
// recorded across the hot-path overhaul.
type coreFile struct {
	Before *coreDoc `json:"before,omitempty"`
	After  *coreDoc `json:"after,omitempty"`
}

// coreRunOpts mirrors benchRunOpts in bench_core_test.go; shards>0 runs
// the same job on the sharded kernel (output identical, wall-clock the
// variable under measurement).
func coreRunOpts(proto string, np, shards int) ftckpt.Options {
	intervals := map[int]time.Duration{
		64:    8 * time.Second,
		256:   2 * time.Second,
		1024:  400 * time.Millisecond,
		4096:  8 * time.Second,
		16384: 8 * time.Second,
	}
	interval := intervals[np]
	if proto == "mlog" && np == 1024 {
		interval = 8 * time.Second
	}
	return ftckpt.Options{
		Workload:        ftckpt.WorkloadBT,
		Class:           ftckpt.ClassA,
		NP:              np,
		ProcsPerNode:    2,
		Protocol:        ftckpt.Protocol(proto),
		Interval:        interval,
		Servers:         4,
		Seed:            1,
		Shards:          shards,
		VclProcessLimit: -1,
	}
}

// measureKernelEvents mirrors BenchmarkKernelEvents: a steady population
// of 1024 pending timers, each firing rescheduling itself, measured over a
// fixed number of dispatches.
func measureKernelEvents() (corePoint, error) {
	const ops = 2_000_000
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	k := sim.New(1)
	remaining := ops
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			k.After(sim.Time(1+k.Rand().Intn(1000))*time.Microsecond, tick)
		}
	}
	for i := 0; i < 1024; i++ {
		k.After(sim.Time(1+k.Rand().Intn(1000))*time.Microsecond, tick)
	}
	if err := k.Run(); err != nil {
		return corePoint{}, fmt.Errorf("kernel-events: %w", err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return corePoint{
		Bench:       "kernel-events",
		WallMS:      float64(wall.Milliseconds()),
		NsPerOp:     float64(wall.Nanoseconds()) / ops,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / ops,
	}, nil
}

// measureRun times one complete fault-tolerant run.
func measureRun(proto string, np, shards int) (corePoint, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	rep, err := ftckpt.Run(coreRunOpts(proto, np, shards))
	if err != nil {
		return corePoint{}, fmt.Errorf("run proto=%s np=%d shards=%d: %w", proto, np, shards, err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return corePoint{
		Bench:       "run",
		Proto:       proto,
		NP:          np,
		Shards:      shards,
		WallMS:      float64(wall.Nanoseconds()) / 1e6,
		AllocsPerOp: float64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  float64(m1.TotalAlloc - m0.TotalAlloc),
		VirtS:       rep.Completion.Seconds(),
		Waves:       rep.Waves,
	}, nil
}

// measureRepair times the in-job recovery point: a 256-process Jacobi
// under Pcl loses a whole node mid-run and the dispatcher splices a
// spare in, ULFM-style, instead of restarting.  The point records the
// run's allocations (gated like every other point), the virtual
// detection-to-resume repair latency, and the recovered-work fraction.
// It uses ftpm directly rather than the facade: the facade's Jacobi is
// sized for the recovery figure, and the bench wants a fixed short run.
func measureRepair() (corePoint, error) {
	const np = 256
	base := func() ftpm.Config {
		return ftpm.Config{
			NP:       np,
			Protocol: ftpm.ProtoPcl,
			Interval: 50 * time.Millisecond,
			Servers:  4,
			// np compute nodes + 4 servers + service node + 2 spares.
			Topology: platform.EthernetCluster(np + 7),
			Profile:  platform.PclSock,
			NewProgram: func(rank, size int) mpi.Program {
				return nas.NewJacobi(rank, size, np*4, 400)
			},
			FTEvery:    10,
			Recovery:   ftpm.RecoveryULFM,
			NodeLoss:   true,
			SpareNodes: 2,
			Seed:       1,
		}
	}
	// The failure-free completion anchors the kill mid-run; both runs are
	// deterministic, so the anchored schedule is too.
	probe, err := ftpm.Run(base())
	if err != nil {
		return corePoint{}, fmt.Errorf("repair probe: %w", err)
	}
	cfg := base()
	cfg.Failures = failure.Plan{{At: probe.Completion / 2, Kind: failure.KindNode, Node: np / 2}}
	col := obs.NewCollector()
	cfg.Sink = col

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err := ftpm.Run(cfg)
	if err != nil {
		return corePoint{}, fmt.Errorf("repair run: %w", err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if res.Repairs != 1 || res.Restarts != 0 {
		return corePoint{}, fmt.Errorf("repair run: got %d repairs and %d restarts, want one clean in-job repair",
			res.Repairs, res.Restarts)
	}
	var failedAt, resumedAt sim.Time
	for _, ev := range col.Events() {
		switch {
		case ev.Type == obs.EvProcFailed && failedAt == 0:
			failedAt = ev.T
		case ev.Type == obs.EvRepairEnd:
			resumedAt = ev.T
		}
	}
	return corePoint{
		Bench:       "repair",
		Proto:       "pcl",
		NP:          np,
		WallMS:      float64(wall.Nanoseconds()) / 1e6,
		AllocsPerOp: float64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  float64(m1.TotalAlloc - m0.TotalAlloc),
		VirtS:       res.Completion.Seconds(),
		Waves:       res.WavesCommitted,
		RepairMS:    float64((resumedAt - failedAt).Nanoseconds()) / 1e6,
		Recovered:   1 - float64(res.LostWork)/(float64(np)*float64(res.Completion)),
	}, nil
}

// measureStorage times the hierarchy store path at the paper's grid
// scale: the same BT.A job as the NP=256 matrix point, but checkpointing
// through a two-level buffer + replicated-servers hierarchy, with either
// full or incremental+compressed images.  The pair records what the
// image planner costs (and saves) on the hot path; both points sit under
// the allocation gate, so a leak in staging, drains or the delta chains
// shows up in CI.
func measureStorage(incremental bool) (corePoint, error) {
	const np = 256
	o := coreRunOpts("pcl", np, 0)
	o.Servers = 0
	o.Storage = &ftckpt.StorageSpec{
		Levels: []ftckpt.LevelSpec{
			{Kind: ftckpt.LevelBuffer},
			{Kind: ftckpt.LevelServers, Servers: 4, Replicas: 2, WriteQuorum: 1},
		},
	}
	bench := "storage-full"
	if incremental {
		o.Storage.Incremental = true
		o.Storage.Compress = true
		bench = "storage-incremental"
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	rep, err := ftckpt.Run(o)
	if err != nil {
		return corePoint{}, fmt.Errorf("%s np=%d: %w", bench, np, err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return corePoint{
		Bench:       bench,
		Proto:       "pcl",
		NP:          np,
		WallMS:      float64(wall.Nanoseconds()) / 1e6,
		AllocsPerOp: float64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  float64(m1.TotalAlloc - m0.TotalAlloc),
		VirtS:       rep.Completion.Seconds(),
		Waves:       rep.Waves,
	}, nil
}

// coreSpec names one run measurement: protocol, size and shard count
// (0 = sequential kernel); repair selects the ULFM in-job recovery
// point and storage ("full" or "incremental") the hierarchy store-path
// points instead of a plain run.
type coreSpec struct {
	proto   string
	np      int
	shards  int
	repair  bool
	storage string
}

func coreMeasure(points []coreSpec) (*coreDoc, error) {
	doc := &coreDoc{
		Cmd:  "figures -bench-core",
		Go:   runtime.Version(),
		CPUs: runtime.NumCPU(),
	}
	// Warm up the process (thread pool, heap target, page cache) with one
	// unmeasured small run: the first simulation in a fresh process is
	// consistently 20-50% slower than steady state, which would bias
	// whichever matrix point happens to run first.
	if len(points) > 0 {
		if _, err := ftckpt.Run(coreRunOpts("pcl", 64, 0)); err != nil {
			return nil, err
		}
	}
	ke, err := measureKernelEvents()
	if err != nil {
		return nil, err
	}
	doc.Points = append(doc.Points, ke)
	fmt.Fprintf(os.Stderr, "figures: %-28s %8.1f ns/op  %7.3f allocs/op  %8.1f B/op\n",
		"kernel-events", ke.NsPerOp, ke.AllocsPerOp, ke.BytesPerOp)
	for _, pt := range points {
		var p corePoint
		var err error
		switch {
		case pt.repair:
			p, err = measureRepair()
		case pt.storage != "":
			p, err = measureStorage(pt.storage == "incremental")
		default:
			p, err = measureRun(pt.proto, pt.np, pt.shards)
		}
		if err != nil {
			return nil, err
		}
		if p.NP > doc.MaxNP {
			doc.MaxNP = p.NP
		}
		// A shard point's speedup is computed against the sequential point
		// of the same protocol and size measured earlier in this document,
		// so both sides of the ratio come from the same machine and load.
		if pt.shards > 1 {
			for i := range doc.Points {
				s := &doc.Points[i]
				if s.Bench == "run" && s.Proto == pt.proto && s.NP == pt.np && s.Shards == 0 && s.WallMS > 0 {
					p.Speedup = s.WallMS / p.WallMS
					break
				}
			}
		}
		doc.Points = append(doc.Points, p)
		label := fmt.Sprintf("%s proto=%s np=%d", p.Bench, pt.proto, pt.np)
		if pt.shards > 0 {
			label += fmt.Sprintf(" shards=%d", pt.shards)
		}
		fmt.Fprintf(os.Stderr, "figures: %-28s %8.0f ms  %12.0f allocs  %6.1f virt-s  %d waves",
			label, p.WallMS, p.AllocsPerOp, p.VirtS, p.Waves)
		if p.Speedup > 0 {
			fmt.Fprintf(os.Stderr, "  %.2fx vs sequential", p.Speedup)
		}
		if pt.repair {
			fmt.Fprintf(os.Stderr, "  repair %.2f virt-ms  recovered %.4f", p.RepairMS, p.Recovered)
		}
		fmt.Fprintln(os.Stderr)
	}
	return doc, nil
}

// benchCore measures the full matrix up to maxNP and writes the document.
// After the sequential matrix it measures the shard-scaling points: mlog
// (the protocol with the densest event stream, hence the one the sharded
// kernel targets) at NP=1024 and — when -bench-core-np raises the ceiling
// — 4096 and 16384, each on a 4-shard kernel, with speedup computed
// against the sequential run of the same size.
func benchCore(path string, maxNP int) error {
	var pts []coreSpec
	for _, proto := range []string{"pcl", "vcl", "mlog"} {
		for _, np := range []int{64, 256, 1024} {
			if np <= maxNP {
				pts = append(pts, coreSpec{proto: proto, np: np})
			}
		}
	}
	// The cheap pcl point backs -bench-core-check's smoke gate; the mlog
	// points are the recorded scaling trajectory.
	pts = append(pts, coreSpec{proto: "pcl", np: 256, shards: 4})
	// The ULFM repair point: one node loss survived in-job at the paper's
	// grid scale, gated on allocations like every run point and recorded
	// with its virtual detection-to-resume latency.
	if 256 <= maxNP {
		pts = append(pts, coreSpec{proto: "pcl", np: 256, repair: true})
		// The storage-hierarchy store-path pair: full vs incremental +
		// compressed images through the two-level (buffer + servers)
		// hierarchy at the same scale.
		pts = append(pts,
			coreSpec{proto: "pcl", np: 256, storage: "full"},
			coreSpec{proto: "pcl", np: 256, storage: "incremental"})
	}
	for _, np := range []int{1024, 4096, 16384} {
		if np > maxNP {
			continue
		}
		if np > 1024 {
			// The matrix stops at 1024; larger scaling points need their
			// own sequential baseline for the speedup ratio.
			pts = append(pts, coreSpec{proto: "mlog", np: np})
		}
		pts = append(pts, coreSpec{proto: "mlog", np: np, shards: 4})
	}
	doc, err := coreMeasure(pts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "figures: core benchmark document written to %s\n", path)
	}
	return err
}

// benchCoreCheck measures the smoke subset and compares allocations
// against the committed document's "after" section.  The subset keeps CI
// fast while still covering every protocol and the NP=1024 scaling point
// the overhaul targets.
func benchCoreCheck(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file coreFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := file.After
	if base == nil {
		// Accept a flat document too (a file written by -bench-core).
		var flat coreDoc
		if err := json.Unmarshal(raw, &flat); err != nil || len(flat.Points) == 0 {
			return fmt.Errorf("%s: no \"after\" section and not a flat core document", path)
		}
		base = &flat
	}
	find := func(bench, proto string, np, shards int) *corePoint {
		for i := range base.Points {
			p := &base.Points[i]
			if p.Bench == bench && p.Proto == proto && p.NP == np && p.Shards == shards {
				return p
			}
		}
		return nil
	}
	smoke := []coreSpec{
		{proto: "pcl", np: 64}, {proto: "vcl", np: 64}, {proto: "mlog", np: 64},
		{proto: "pcl", np: 256}, {proto: "pcl", np: 1024},
		// One sharded point: keeps the parallel staging path and its
		// speedup under the same regression gate as the allocation counts.
		{proto: "pcl", np: 256, shards: 4},
		// The in-job repair point: keeps the ULFM recovery path under the
		// allocation gate too (a leak in revoke/park/splice shows up here).
		{proto: "pcl", np: 256, repair: true},
		// The hierarchy store-path pair: staging, drains and the image
		// planner (full vs incremental+compressed) under the same gate.
		{proto: "pcl", np: 256, storage: "full"},
		{proto: "pcl", np: 256, storage: "incremental"},
	}
	doc, err := coreMeasure(smoke)
	if err != nil {
		return err
	}
	bad := 0
	for _, p := range doc.Points {
		b := find(p.Bench, p.Proto, p.NP, p.Shards)
		if b == nil {
			fmt.Fprintf(os.Stderr, "figures: %s proto=%s np=%d shards=%d: no committed baseline point — add it with -bench-core\n",
				p.Bench, p.Proto, p.NP, p.Shards)
			bad++
			continue
		}
		// 25% relative headroom plus a small absolute slack: the
		// kernel-events baseline is ~1e-5 allocs/op (runtime background
		// work), where a pure ratio would flag noise.  0.01 allocs/op is
		// far below any real per-event regression and is negligible
		// against the run points' millions.
		limit := b.AllocsPerOp*1.25 + 0.01
		verdict := "ok"
		if p.AllocsPerOp > limit {
			verdict = "REGRESSION"
			bad++
		}
		fmt.Fprintf(os.Stderr, "figures: %-12s proto=%-4s np=%-5d shards=%d allocs %12.3f vs baseline %12.3f (limit %12.3f) %s\n",
			p.Bench, p.Proto, p.NP, p.Shards, p.AllocsPerOp, b.AllocsPerOp, limit, verdict)
		// Shard points additionally gate on speedup: losing more than 25%
		// of the committed speedup means staging parallelism regressed
		// (lookahead collapsed, a new barrier, or shard workers serialized).
		if p.Shards > 1 && b.Speedup > 0 && p.Speedup > 0 {
			floor := b.Speedup * 0.75
			sv := "ok"
			if p.Speedup < floor {
				sv = "REGRESSION"
				bad++
			}
			fmt.Fprintf(os.Stderr, "figures: %-12s proto=%-4s np=%-5d shards=%d speedup %8.2fx vs baseline %8.2fx (floor %8.2fx) %s\n",
				p.Bench, p.Proto, p.NP, p.Shards, p.Speedup, b.Speedup, floor, sv)
		}
	}
	if bad > 0 {
		return fmt.Errorf("core regression: %d point(s) exceed the committed baseline in %s (allocs >1.25x or shard speedup <0.75x)", bad, path)
	}
	fmt.Fprintln(os.Stderr, "figures: core allocations and shard speedup within 25% of the committed baseline")
	return nil
}
