// Command netpipe characterizes the simulated platform with a
// NetPIPE-style ping-pong, as the paper does before the grid experiments
// (§5.4): it reports latency and stream throughput between two nodes of
// the same cluster and two nodes of distinct clusters.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"ftckpt/internal/expt"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rows, err := expt.Netpipe(expt.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpipe:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "size\tintra lat\tinter lat\tintra MB/s\tinter MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%.1f\t%.1f\n", r.Size, r.IntraRTT, r.InterRTT, r.IntraBW, r.InterBW)
	}
	w.Flush()
	last := rows[len(rows)-1]
	first := rows[0]
	fmt.Printf("\nlatency ratio (inter/intra):   %.0fx\n",
		float64(first.InterRTT)/float64(first.IntraRTT))
	fmt.Printf("bandwidth ratio (intra/inter): %.1fx\n", last.IntraBW/last.InterBW)
}
