// Command ftrun executes one fault-tolerant MPI run on the simulated
// platform and prints its report — the equivalent of the paper's mpiexec
// under the fault tolerant process manager.
//
// Examples:
//
//	ftrun -bench bt -class B -np 64 -ppn 2 -proto pcl -interval 30s -servers 4
//	ftrun -bench cg -class C -np 64 -ppn 2 -proto vcl -interval 15s -platform myrinet-tcp
//	ftrun -bench cg-real -np 8 -proto pcl -interval 5ms -fail-at 20ms -fail-rank 3 -v
//	ftrun -bench jacobi -np 8 -proto pcl -interval 25ms -recovery ulfm -spares 2 -fail-at 40ms -fail-rank 3
//
// With -chaos N the run executes under a seeded random failure schedule
// (rank, node, checkpoint-server, staging-buffer and PFS-target kills)
// and checks the recovery invariants; replication across servers is
// controlled by -replicas and -quorum, and -heartbeat enables the
// ping/timeout failure detector:
//
//	ftrun -bench cg-real -np 8 -proto pcl -interval 5ms -servers 2 -replicas 2 -quorum 1 \
//	      -chaos 3 -chaos-seed 7 -chaos-server-frac 0.3 -chaos-until 60ms
//
// -storage-levels selects the multi-level checkpoint storage hierarchy
// instead of the flat server model (levels fastest-first; the level
// carries the server/replica counts, so -servers/-replicas/-quorum must
// stay unset); -incremental and -compress tune the image planner:
//
//	ftrun -bench cg-real -np 8 -proto pcl -interval 5ms \
//	      -storage-levels buffer,servers:2x2,pfs:4x2 -incremental -compress
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the run and
// -allocs prints its allocation statistics — the knobs behind the numbers
// recorded in BENCH_core.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ftckpt"
)

func main() {
	log.SetFlags(0)
	var (
		bench    = flag.String("bench", "bt", "workload: bt, cg, mg, lu (models), cg-real, ep, jacobi (real)")
		class    = flag.String("class", "B", "NPB class for model workloads: A, B, C")
		np       = flag.Int("np", 16, "number of MPI processes")
		ppn      = flag.Int("ppn", 1, "processes per node (2 = dual-processor nodes)")
		proto    = flag.String("proto", "none", "protocol: none, pcl (blocking), vcl (non-blocking), mlog (message logging)")
		interval = flag.Duration("interval", 30*time.Second, "time between checkpoint waves")
		servers  = flag.Int("servers", 1, "number of checkpoint servers")
		plat     = flag.String("platform", "ethernet", "platform: ethernet, myrinet-gm, myrinet-tcp, grid")
		seed     = flag.Int64("seed", 1, "simulation seed")
		shards   = flag.Int("shards", 0, "event-kernel shards (parallel staging workers); 0/1 = sequential, output is identical either way")
		failAt   = flag.Duration("fail-at", 0, "inject a failure at this virtual time (0 = none)")
		failRank = flag.Int("fail-rank", 0, "rank killed by -fail-at")
		mttf     = flag.Duration("mttf", 0, "mean time to failure for random failures (0 = none)")
		srvMTTF  = flag.Duration("server-mttf", 0, "mean time to failure for checkpoint servers (0 = none)")
		nodeMTTF = flag.Duration("node-mttf", 0, "mean time to failure for compute nodes (0 = none)")
		replicas = flag.Int("replicas", 0, "copies of each checkpoint image across servers (0/1 = single copy)")
		quorum   = flag.Int("quorum", 0, "replicas that must acknowledge a store (0 = all replicas)")
		retries  = flag.Int("retries", 0, "store/fetch retry attempts after a replica dies")
		backoff  = flag.Duration("retry-backoff", 0, "delay before each store/fetch retry")
		storage  = flag.String("storage-levels", "", "multi-level storage hierarchy, fastest first: e.g. buffer,servers:2x2,pfs:4x2 (servers:NxR = N servers R replicas, pfs:TxS = T targets S stripes); conflicts with -servers/-replicas/-quorum/-retries/-retry-backoff")
		incr     = flag.Bool("incremental", false, "dirty-region incremental checkpoint images (requires -storage-levels)")
		compress = flag.Bool("compress", false, "compress checkpoint images (requires -storage-levels)")
		hbPeriod = flag.Duration("heartbeat", 0, "heartbeat ping period; 0 keeps instant failure detection")
		hbTmo    = flag.Duration("hb-timeout", 0, "silence before a component is declared dead (0 = 4x the period)")
		recovery = flag.String("recovery", "restart", "failure recovery: restart (rollback the whole job) or ulfm (in-job repair from partner snapshots)")
		spares   = flag.Int("spares", 0, "spare compute nodes reserved for ulfm node-loss repairs")

		chaosN       = flag.Int("chaos", 0, "run under a seeded random failure schedule of this many kills")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed of the chaos schedule")
		chaosSrvFrac = flag.Float64("chaos-server-frac", 0.25, "fraction of chaos kills aimed at checkpoint servers")
		chaosNdFrac  = flag.Float64("chaos-node-frac", 0.25, "fraction of chaos kills aimed at whole compute nodes")
		chaosBufFrac = flag.Float64("chaos-buffer-frac", 0, "fraction of chaos kills aimed at node-local staging buffers (requires a buffer level)")
		chaosPFSFrac = flag.Float64("chaos-pfs-frac", 0, "fraction of chaos kills aimed at PFS targets (requires a pfs level)")
		chaosFrom    = flag.Duration("chaos-from", 10*time.Millisecond, "start of the chaos kill window")
		chaosUntil   = flag.Duration("chaos-until", 100*time.Millisecond, "end of the chaos kill window")
		verbose      = flag.Bool("v", false, "trace runtime events")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace_event timeline (open in Perfetto) to this file")
		streamTr     = flag.Bool("stream-trace", false, "stream -trace-out to disk as the run progresses (bounded memory, no causality arrows)")
		metOut       = flag.String("metrics-out", "", "write the run's metrics to this file (.csv extension selects CSV, else JSON)")
		explain      = flag.Bool("explain", false, "trace causal spans and print the per-phase overhead attribution (conservation-checked)")
		explOut      = flag.String("explain-out", "", "write the attribution report as deterministic JSON to this file (implies span tracing)")
		metSnap      = flag.Duration("metrics-snapshot", 0, "sample cumulative counters every period as Perfetto counter tracks (0 = off)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
		allocs  = flag.Bool("allocs", false, "print the run's allocation statistics (mallocs, bytes, GC cycles) to stderr")
	)
	flag.Usage = usage
	flag.Parse()

	o := ftckpt.Options{
		Workload:     ftckpt.Workload(*bench),
		Class:        ftckpt.Class(*class),
		NP:           *np,
		ProcsPerNode: *ppn,
		Protocol:     ftckpt.Protocol(*proto),
		Heartbeat: &ftckpt.HeartbeatSpec{
			Period:  *hbPeriod,
			Timeout: *hbTmo,
		},
		Platform:   ftckpt.Platform(*plat),
		Recovery:   ftckpt.RecoveryMode(*recovery),
		Spares:     *spares,
		Seed:       *seed,
		Shards:     *shards,
		MTTF:       *mttf,
		ServerMTTF: *srvMTTF,
		NodeMTTF:   *nodeMTTF,
	}
	if *storage != "" {
		// The hierarchy's levels carry the server and replication knobs;
		// the flat flags would silently disagree with them.
		for _, name := range []string{"servers", "replicas", "quorum", "retries", "retry-backoff"} {
			if flagSet(name) {
				fmt.Fprintf(os.Stderr, "ftrun: -%s conflicts with -storage-levels (set it on the hierarchy's servers level)\n", name)
				os.Exit(2)
			}
		}
		spec, err := parseStorageLevels(*storage)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftrun: -storage-levels:", err)
			os.Exit(2)
		}
		spec.Incremental = *incr
		spec.Compress = *compress
		o.Storage = spec
	} else {
		if *incr {
			fmt.Fprintln(os.Stderr, "ftrun: -incremental requires -storage-levels")
			os.Exit(2)
		}
		if *compress {
			fmt.Fprintln(os.Stderr, "ftrun: -compress requires -storage-levels")
			os.Exit(2)
		}
		o.Servers = *servers
		o.Replication = &ftckpt.ReplicationSpec{
			Replicas:     *replicas,
			WriteQuorum:  *quorum,
			StoreRetries: *retries,
			RetryBackoff: *backoff,
		}
	}
	if *proto != "none" {
		o.Interval = *interval
	}
	if *failAt > 0 {
		o.Failures = []ftckpt.Failure{ftckpt.KillRank(*failAt, *failRank)}
	}
	if *verbose {
		o.Verbose = log.Printf
	}
	o.Attribution = *explain || *explOut != ""
	o.MetricsSnapshot = *metSnap
	var col *ftckpt.Collector
	var closeStream func()
	if *traceOut != "" {
		if *streamTr {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftrun:", err)
				os.Exit(1)
			}
			stream := ftckpt.NewChromeStreamSink(f)
			o.Sink = stream
			closeStream = func() {
				err := stream.Close()
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "ftrun:", err)
					os.Exit(1)
				}
			}
		} else {
			col = ftckpt.NewCollector()
			o.Sink = col
		}
	}

	finishProf := startProfiling(*cpuProf, *memProf, *allocs)

	if *chaosN > 0 {
		code := runChaos(o, ftckpt.ChaosSpec{
			Seed:       *chaosSeed,
			Kills:      *chaosN,
			ServerFrac: *chaosSrvFrac,
			NodeFrac:   *chaosNdFrac,
			BufferFrac: *chaosBufFrac,
			PFSFrac:    *chaosPFSFrac,
			From:       *chaosFrom,
			Until:      *chaosUntil,
		}, *explain, *explOut)
		if closeStream != nil {
			closeStream()
		}
		finishProf()
		os.Exit(code)
	}

	rep, err := ftckpt.Run(o)
	finishProf()
	// Flush trace artifacts before deciding the exit: a failure-aborted
	// run (degraded stop, deadline) must still leave a valid trace
	// document — the streaming sink closes its open intervals and writes
	// the JSON tail, and the collector dumps what it saw.  Exiting first
	// used to truncate -stream-trace output mid-document.
	if col != nil {
		writeFile(*traceOut, col.WriteChromeTrace)
	}
	if closeStream != nil {
		closeStream()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrun:", err)
		os.Exit(1)
	}
	if *metOut != "" {
		if strings.HasSuffix(*metOut, ".csv") {
			writeFile(*metOut, rep.Metrics.WriteCSV)
		} else {
			writeFile(*metOut, rep.Metrics.WriteJSON)
		}
	}
	fmt.Printf("workload          %s (class %s), np=%d ppn=%d on %s\n", *bench, *class, *np, *ppn, *plat)
	fmt.Printf("protocol          %s", *proto)
	if *proto != "none" {
		if *storage != "" {
			fmt.Printf(", wave every %v, storage %s", *interval, *storage)
		} else {
			fmt.Printf(", wave every %v, %d server(s)", *interval, *servers)
		}
	}
	fmt.Println()
	fmt.Printf("completion        %v\n", rep.Completion)
	fmt.Printf("waves committed   %d (%d local checkpoints, %.1f MB stored)\n",
		rep.Waves, rep.LocalCheckpoints, rep.CheckpointMB)
	if rep.Waves > 0 {
		fmt.Printf("wave breakdown    snapshot straggle %v, transfer %v, cycle %v (means)\n",
			rep.MeanWaveSpread, rep.MeanWaveTransfer, rep.MeanWaveCycle)
	}
	if rep.Restarts > 0 {
		fmt.Printf("restarts          %d\n", rep.Restarts)
	}
	if rep.Repairs > 0 {
		fmt.Printf("repairs           %d in-job (%v work redone, %.4f of total recovered)\n",
			rep.Repairs, rep.LostWork, rep.RecoveredWork)
	}
	if rep.LoggedMessages > 0 {
		fmt.Printf("channel state     %d messages, %.2f MB logged\n", rep.LoggedMessages, rep.LoggedMB)
	}
	fmt.Printf("traffic           %d messages, %.1f MB payload\n", rep.Messages, rep.PayloadMB)
	fmt.Printf("checksum          %v\n", rep.Checksum)
	if *traceOut != "" {
		fmt.Printf("timeline          %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metOut != "" {
		fmt.Printf("metrics           %s\n", *metOut)
	}
	if rep.Attribution != nil {
		if code := explainReport(rep.Attribution, *explain, *explOut); code != 0 {
			os.Exit(code)
		}
	}
}

// explainReport validates and emits the attribution: the conservation
// check must hold (a broken partition is a bug, exit non-zero), then the
// table goes to stdout and/or the deterministic JSON to a file.
func explainReport(a *ftckpt.Attribution, table bool, jsonPath string) int {
	if err := a.Check(); err != nil {
		fmt.Fprintln(os.Stderr, "ftrun: attribution conservation violated:", err)
		return 1
	}
	if jsonPath != "" {
		writeFile(jsonPath, a.WriteJSON)
		fmt.Printf("attribution       %s\n", jsonPath)
	}
	if table {
		fmt.Println()
		if err := a.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ftrun:", err)
			return 1
		}
	}
	return 0
}

// runChaos executes the job under a seeded random failure schedule and
// reports the recovery-invariant verdict.  It returns the process exit
// code rather than exiting, so profiling output is flushed first.
// Invariant violations are non-zero; a degraded stop (unrecoverable loss,
// expected without replication) is a reported outcome.
func runChaos(o ftckpt.Options, sp ftckpt.ChaosSpec, explain bool, explOut string) int {
	rep, err := ftckpt.Chaos(o, sp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrun:", err)
		return 1
	}
	fmt.Printf("chaos schedule    seed %d, %d kills in [%v, %v)\n", sp.Seed, sp.Kills, sp.From, sp.Until)
	for _, f := range rep.Plan {
		victim := f.Rank
		switch f.Kind {
		case "node", "buffer":
			victim = f.Node
		case "server", "pfs":
			victim = f.Server
		}
		fmt.Printf("  kill %-6s %-3d @ %v\n", f.Kind, victim, f.At)
	}
	if rep.Degraded != nil {
		fmt.Printf("outcome           degraded stop: %v\n", rep.Degraded)
	} else {
		fmt.Printf("outcome           recovered: completion %v, %d restarts, %d repairs, %d failovers\n",
			rep.Report.Completion, rep.Report.Restarts, rep.Report.Repairs, rep.Report.Failovers)
		if rep.Report.Repairs > 0 {
			fmt.Printf("recovered work    %.4f of total (%v redone in-job)\n",
				rep.Report.RecoveredWork, rep.Report.LostWork)
		}
		fmt.Printf("checksum          %v (reference %v)\n", rep.Checksum, rep.Reference)
	}
	if rep.Report.Attribution != nil {
		if code := explainReport(rep.Report.Attribution, explain, explOut); code != 0 {
			return code
		}
	}
	if !rep.OK() {
		fmt.Println("INVARIANT VIOLATIONS:")
		for _, v := range rep.Violations {
			fmt.Println("  " + v)
		}
		return 1
	}
	fmt.Println("invariants        all held")
	return 0
}

// startProfiling arms the requested profilers and returns the function
// that finalizes them once the run is over.  The CPU profile covers the
// whole run; the heap profile is taken after a final GC so it shows what
// the run left live, and -allocs prints cumulative allocation counters
// (the number CI's bench-core gate tracks) without any profile file.
func startProfiling(cpuPath, memPath string, allocStats bool) func() {
	var m0 runtime.MemStats
	if allocStats {
		runtime.GC()
		runtime.ReadMemStats(&m0)
	}
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftrun:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	start := time.Now()
	return func() {
		wall := time.Since(start)
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ftrun:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cpuprofile        %s\n", cpuPath)
		}
		if allocStats {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			fmt.Fprintf(os.Stderr, "allocs            %d mallocs, %.1f MB allocated, %d GC cycles, %v wall\n",
				m1.Mallocs-m0.Mallocs,
				float64(m1.TotalAlloc-m0.TotalAlloc)/(1<<20),
				m1.NumGC-m0.NumGC, wall.Round(time.Millisecond))
		}
		if memPath != "" {
			runtime.GC()
			writeFile(memPath, pprof.WriteHeapProfile)
			fmt.Fprintf(os.Stderr, "memprofile        %s\n", memPath)
		}
	}
}

// usage prints the flags in task groups (workload, protocol, storage and
// replication, failures, chaos, output, profiling) instead of the flag
// package's flat alphabetical dump — the storage flags sit next to the
// replication flags they interact with.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "Usage of ftrun:")
	groups := []struct {
		title string
		names []string
	}{
		{"Workload and platform", []string{"bench", "class", "np", "ppn", "platform", "seed", "shards"}},
		{"Protocol", []string{"proto", "interval"}},
		{"Storage and replication", []string{"servers", "replicas", "quorum", "retries", "retry-backoff",
			"storage-levels", "incremental", "compress"}},
		{"Failure injection, detection and recovery", []string{"fail-at", "fail-rank", "mttf", "server-mttf",
			"node-mttf", "heartbeat", "hb-timeout", "recovery", "spares"}},
		{"Chaos harness", []string{"chaos", "chaos-seed", "chaos-server-frac", "chaos-node-frac",
			"chaos-buffer-frac", "chaos-pfs-frac", "chaos-from", "chaos-until"}},
		{"Output", []string{"v", "trace-out", "stream-trace", "metrics-out", "metrics-snapshot",
			"explain", "explain-out"}},
		{"Profiling", []string{"cpuprofile", "memprofile", "allocs"}},
	}
	for _, g := range groups {
		fmt.Fprintf(w, "\n%s:\n", g.title)
		for _, name := range g.names {
			f := flag.Lookup(name)
			if f == nil {
				continue
			}
			arg, use := flag.UnquoteUsage(f)
			head := "-" + f.Name
			if arg != "" {
				head += " " + arg
			}
			if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" && f.DefValue != "0s" {
				use += fmt.Sprintf(" (default %v)", f.DefValue)
			}
			fmt.Fprintf(w, "  %s\n    \t%s\n", head, use)
		}
	}
}

// flagSet reports whether the named flag was set on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseStorageLevels parses the -storage-levels syntax: comma-separated
// levels fastest-first, "buffer", "servers:NxR" (N servers, R replicas;
// ":N" alone keeps single copies) and "pfs:TxS" (T targets, S stripes).
func parseStorageLevels(s string) (*ftckpt.StorageSpec, error) {
	spec := &ftckpt.StorageSpec{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, arg, hasArg := strings.Cut(part, ":")
		two := func() (int, int, error) {
			a, b, hasB := strings.Cut(arg, "x")
			n1, err := strconv.Atoi(a)
			if err != nil {
				return 0, 0, fmt.Errorf("level %q: bad count %q", part, a)
			}
			n2 := 0
			if hasB {
				if n2, err = strconv.Atoi(b); err != nil {
					return 0, 0, fmt.Errorf("level %q: bad count %q", part, b)
				}
			}
			return n1, n2, nil
		}
		switch kind {
		case "buffer":
			if hasArg {
				return nil, fmt.Errorf("level %q: buffer takes no arguments", part)
			}
			spec.Levels = append(spec.Levels, ftckpt.LevelSpec{Kind: ftckpt.LevelBuffer})
		case "servers":
			if !hasArg {
				return nil, fmt.Errorf("level %q: want servers:NxR (N servers, R replicas)", part)
			}
			n, r, err := two()
			if err != nil {
				return nil, err
			}
			spec.Levels = append(spec.Levels, ftckpt.LevelSpec{Kind: ftckpt.LevelServers, Servers: n, Replicas: r})
		case "pfs":
			l := ftckpt.LevelSpec{Kind: ftckpt.LevelPFS}
			if hasArg {
				t, st, err := two()
				if err != nil {
					return nil, err
				}
				l.Targets, l.Stripes = t, st
			}
			spec.Levels = append(spec.Levels, l)
		default:
			return nil, fmt.Errorf("unknown level %q (want buffer, servers:NxR or pfs:TxS)", part)
		}
	}
	return spec, nil
}

// writeFile writes one export, treating any failure as fatal: a run whose
// requested artifacts cannot be saved should not exit 0.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrun:", err)
		os.Exit(1)
	}
}
