// Command ftrun executes one fault-tolerant MPI run on the simulated
// platform and prints its report — the equivalent of the paper's mpiexec
// under the fault tolerant process manager.
//
// Examples:
//
//	ftrun -bench bt -class B -np 64 -ppn 2 -proto pcl -interval 30s -servers 4
//	ftrun -bench cg -class C -np 64 -ppn 2 -proto vcl -interval 15s -platform myrinet-tcp
//	ftrun -bench cg-real -np 8 -proto pcl -interval 5ms -fail-at 20ms -fail-rank 3 -v
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"ftckpt"
)

func main() {
	log.SetFlags(0)
	var (
		bench    = flag.String("bench", "bt", "workload: bt, cg, mg, lu (models), cg-real, ep, jacobi (real)")
		class    = flag.String("class", "B", "NPB class for model workloads: A, B, C")
		np       = flag.Int("np", 16, "number of MPI processes")
		ppn      = flag.Int("ppn", 1, "processes per node (2 = dual-processor nodes)")
		proto    = flag.String("proto", "none", "protocol: none, pcl (blocking), vcl (non-blocking), mlog (message logging)")
		interval = flag.Duration("interval", 30*time.Second, "time between checkpoint waves")
		servers  = flag.Int("servers", 1, "number of checkpoint servers")
		plat     = flag.String("platform", "ethernet", "platform: ethernet, myrinet-gm, myrinet-tcp, grid")
		seed     = flag.Int64("seed", 1, "simulation seed")
		failAt   = flag.Duration("fail-at", 0, "inject a failure at this virtual time (0 = none)")
		failRank = flag.Int("fail-rank", 0, "rank killed by -fail-at")
		mttf     = flag.Duration("mttf", 0, "mean time to failure for random failures (0 = none)")
		verbose  = flag.Bool("v", false, "trace runtime events")
		traceOut = flag.String("trace-out", "", "write a Chrome trace_event timeline (open in Perfetto) to this file")
		metOut   = flag.String("metrics-out", "", "write the run's metrics to this file (.csv extension selects CSV, else JSON)")
	)
	flag.Parse()

	o := ftckpt.Options{
		Workload:     *bench,
		Class:        *class,
		NP:           *np,
		ProcsPerNode: *ppn,
		Protocol:     *proto,
		Servers:      *servers,
		Platform:     *plat,
		Seed:         *seed,
		MTTF:         *mttf,
	}
	if *proto != "none" {
		o.Interval = *interval
	}
	if *failAt > 0 {
		o.Failures = []ftckpt.Failure{{At: *failAt, Rank: *failRank}}
	}
	if *verbose {
		o.Verbose = log.Printf
	}
	var col *ftckpt.Collector
	if *traceOut != "" {
		col = ftckpt.NewCollector()
		o.Sink = col
	}

	rep, err := ftckpt.Run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrun:", err)
		os.Exit(1)
	}
	if col != nil {
		writeFile(*traceOut, col.WriteChromeTrace)
	}
	if *metOut != "" {
		if strings.HasSuffix(*metOut, ".csv") {
			writeFile(*metOut, rep.Metrics.WriteCSV)
		} else {
			writeFile(*metOut, rep.Metrics.WriteJSON)
		}
	}
	fmt.Printf("workload          %s (class %s), np=%d ppn=%d on %s\n", *bench, *class, *np, *ppn, *plat)
	fmt.Printf("protocol          %s", *proto)
	if *proto != "none" {
		fmt.Printf(", wave every %v, %d server(s)", *interval, *servers)
	}
	fmt.Println()
	fmt.Printf("completion        %v\n", rep.Completion)
	fmt.Printf("waves committed   %d (%d local checkpoints, %.1f MB stored)\n",
		rep.Waves, rep.LocalCheckpoints, rep.CheckpointMB)
	if rep.Waves > 0 {
		fmt.Printf("wave breakdown    snapshot straggle %v, transfer %v, cycle %v (means)\n",
			rep.MeanWaveSpread, rep.MeanWaveTransfer, rep.MeanWaveCycle)
	}
	if rep.Restarts > 0 {
		fmt.Printf("restarts          %d\n", rep.Restarts)
	}
	if rep.LoggedMessages > 0 {
		fmt.Printf("channel state     %d messages, %.2f MB logged\n", rep.LoggedMessages, rep.LoggedMB)
	}
	fmt.Printf("traffic           %d messages, %.1f MB payload\n", rep.Messages, rep.PayloadMB)
	fmt.Printf("checksum          %v\n", rep.Checksum)
	if *traceOut != "" {
		fmt.Printf("timeline          %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metOut != "" {
		fmt.Printf("metrics           %s\n", *metOut)
	}
}

// writeFile writes one export, treating any failure as fatal: a run whose
// requested artifacts cannot be saved should not exit 0.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrun:", err)
		os.Exit(1)
	}
}
