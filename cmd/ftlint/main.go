// Command ftlint runs the repository's static-analysis suite — the
// determinism, pooling, confinement, span-balance and error-discipline
// invariants documented in DESIGN §5.8 and §5.13 — over Go package
// patterns and exits non-zero if any diagnostic is reported.
//
// Usage:
//
//	go run ./cmd/ftlint ./...
//	go run ./cmd/ftlint -json ./internal/sim ./internal/simnet
//	go run ./cmd/ftlint -only shardconfine ./...
//	go run ./cmd/ftlint -fix ./...
//
// Must run with the working directory inside the module (import
// resolution shells out to `go list` for module paths).  -json emits a
// machine-readable diagnostic array (file/line/col/analyzer/message) for
// CI annotations; the exit status is 1 whenever diagnostics exist in
// either mode.  -tests includes in-package _test.go files.  -fix applies
// the mechanical rewrites some diagnostics carry (sorted-iteration
// wrappers for mapiter, %w rewrites for errtype, dead-waiver removal)
// and exits 0 when every diagnostic was fixed; a second -fix run is a
// no-op by construction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ftckpt/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (file/line/col/analyzer/message)")
	includeTests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	fix := flag.Bool("fix", false, "apply suggested mechanical rewrites to the source files")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "ftlint: -only %q matches no analyzer\n", *only)
			os.Exit(2)
		}
		analyzers = filtered
	}

	loader := analysis.NewLoader()
	loader.IncludeTests = *includeTests
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		os.Exit(2)
	}

	if *fix && len(diags) > 0 {
		fixed := analysis.FixCount(diags)
		files, err := analysis.ApplyFixes(pkgs[0].Fset, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "ftlint: fixed %d of %d diagnostic(s) in %d file(s)\n",
			fixed, len(diags), len(files))
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				fmt.Println(d)
			}
		}
		if fixed == len(diags) {
			return
		}
		os.Exit(1)
	}

	if *jsonOut {
		type diagJSON struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]diagJSON, len(diags))
		for i, d := range diags {
			out[i] = diagJSON{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ftlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
