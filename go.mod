module ftckpt

go 1.22
