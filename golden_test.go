package ftckpt

// Golden determinism tests: the contract the performance work must not
// bend is that a seed fully determines a run.  Every observable artifact —
// the Report (including the workload checksum), the metrics export and the
// Chrome trace timeline — must be byte-identical when the same Options run
// twice, including runs that exercise failure injection, recovery and
// replicated checkpoint servers.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// goldenArtifacts executes one run and returns its comparable Report (the
// registry pointer stripped), metrics JSON and Chrome trace bytes.
func goldenArtifacts(t *testing.T, o Options) (Report, []byte, []byte) {
	t.Helper()
	col := NewCollector()
	o.Sink = col
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var met, trace bytes.Buffer
	if err := rep.Metrics.WriteJSON(&met); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	rep.Metrics = nil
	return rep, met.Bytes(), trace.Bytes()
}

func checkGolden(t *testing.T, o Options) {
	t.Helper()
	r1, m1, c1 := goldenArtifacts(t, o)
	r2, m2, c2 := goldenArtifacts(t, o)
	if r1 != r2 {
		t.Errorf("Report differs across identical runs:\n  first  %+v\n  second %+v", r1, r2)
	}
	if r1.Checksum != r2.Checksum {
		t.Errorf("checksum differs: %v vs %v", r1.Checksum, r2.Checksum)
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics JSON differs across identical runs (%d vs %d bytes)", len(m1), len(m2))
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("Chrome trace differs across identical runs (%d vs %d bytes)", len(c1), len(c2))
	}
}

// TestGoldenDeterminism runs each protocol twice through a failure and
// recovery and requires byte-identical artifacts.
func TestGoldenDeterminism(t *testing.T) {
	for _, proto := range []Protocol{Pcl, Vcl, Mlog} {
		t.Run(string(proto), func(t *testing.T) {
			checkGolden(t, Options{
				Workload:     WorkloadBT,
				Class:        ClassA,
				NP:           16,
				ProcsPerNode: 2,
				Protocol:     proto,
				Interval:     2 * time.Second,
				Servers:      2,
				Seed:         42,
				Failures:     []Failure{KillRank(3*time.Second, 5)},
			})
		})
	}
}

// TestGoldenDeterminismReplicated covers the replication + heartbeat path,
// whose retry timers and failover fetches must be as reproducible as the
// base protocols.
func TestGoldenDeterminismReplicated(t *testing.T) {
	checkGolden(t, Options{
		Workload:     WorkloadCGReal,
		NP:           8,
		ProcsPerNode: 2,
		Protocol:     Pcl,
		Interval:     5 * time.Millisecond,
		Servers:      3,
		Replication:  &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 2, RetryBackoff: time.Millisecond},
		Heartbeat:    &HeartbeatSpec{Period: 2 * time.Millisecond},
		Seed:         7,
		Failures: []Failure{
			KillServer(11*time.Millisecond, 1),
			KillRank(17*time.Millisecond, 3),
		},
	})
}

// TestGoldenDeterminismChaosSweep runs a replicated, heartbeat-enabled
// chaos sweep concurrently (Jobs=4, with GOMAXPROCS pinned above 1 so
// that under -race the points really execute in parallel) and requires
// every artifact — reports, the deterministically merged metrics
// registry, each point's Chrome trace and the serialized progress log —
// to be byte-identical across two executions.  This is the dynamic half
// of the contract ftlint enforces statically: no map-iteration order, no
// worker interleaving and no shared-registry write may leak into output.
func TestGoldenDeterminismChaosSweep(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	repl := &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 2, RetryBackoff: time.Millisecond}
	hb := &HeartbeatSpec{Period: 2 * time.Millisecond}
	base := []Options{
		{Protocol: Pcl, Seed: 7, Failures: []Failure{
			KillServer(11*time.Millisecond, 1), KillRank(17*time.Millisecond, 3)}},
		{Protocol: Vcl, Seed: 11, Failures: []Failure{
			KillRank(13*time.Millisecond, 2), KillNode(23*time.Millisecond, 1)}},
		{Protocol: Mlog, Seed: 13, Failures: []Failure{
			KillServer(9*time.Millisecond, 0)}},
		{Protocol: Pcl, Seed: 21, Failures: []Failure{
			KillNode(15*time.Millisecond, 2)}},
	}
	for i := range base {
		base[i].Workload = WorkloadCGReal
		base[i].NP = 8
		base[i].ProcsPerNode = 2
		base[i].Interval = 5 * time.Millisecond
		base[i].Servers = 3
		base[i].Replication = repl
		base[i].Heartbeat = hb
	}

	runOnce := func() ([]Report, []byte, [][]byte, []byte) {
		pts := make([]Options, len(base))
		cols := make([]*Collector, len(base))
		for i := range base {
			pts[i] = base[i]
			cols[i] = NewCollector()
			pts[i].Sink = cols[i]
			// Non-nil Verbose opts the point into the sweep's ordered
			// trace sink; the function itself is replaced by Sweep.
			pts[i].Verbose = func(string, ...any) {}
		}
		met := NewMetrics()
		var traceLog bytes.Buffer
		reps, err := Sweep(pts, SweepOptions{
			Jobs:    4,
			Metrics: met,
			Trace:   func(format string, args ...any) { fmt.Fprintf(&traceLog, format+"\n", args...) },
		})
		if err != nil {
			t.Fatalf("Sweep: %v", err)
		}
		var metJSON bytes.Buffer
		if err := met.WriteJSON(&metJSON); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		chromes := make([][]byte, len(cols))
		for i, col := range cols {
			var b bytes.Buffer
			if err := col.WriteChromeTrace(&b); err != nil {
				t.Fatalf("WriteChromeTrace: %v", err)
			}
			chromes[i] = b.Bytes()
		}
		for i := range reps {
			reps[i].Metrics = nil
		}
		return reps, metJSON.Bytes(), chromes, traceLog.Bytes()
	}

	r1, m1, c1, l1 := runOnce()
	r2, m2, c2, l2 := runOnce()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("point %d: Report differs across identical sweeps:\n  first  %+v\n  second %+v", i, r1[i], r2[i])
		}
		if !bytes.Equal(c1[i], c2[i]) {
			t.Errorf("point %d: Chrome trace differs across identical sweeps (%d vs %d bytes)", i, len(c1[i]), len(c2[i]))
		}
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("merged metrics JSON differs across identical sweeps (%d vs %d bytes)", len(m1), len(m2))
	}
	if !bytes.Equal(l1, l2) {
		t.Errorf("serialized trace log differs across identical sweeps (%d vs %d bytes)", len(l1), len(l2))
	}
}

// ulfmGolden is the spare-rank in-job recovery scenario of the golden
// suite: Jacobi under ULFM recovery with a spare pool.
func ulfmGolden() Options {
	return Options{
		Workload: WorkloadJacobi,
		NP:       8,
		Protocol: Pcl,
		Interval: 25 * time.Millisecond,
		Servers:  2,
		Recovery: RecoveryULFM,
		Spares:   2,
		Seed:     5,
	}
}

// TestGoldenDeterminismULFM pins the in-job recovery path: a spare-rank
// repair sweep — rank kill, node kill spliced onto a spare, and the
// non-blocking protocol — must repair without any rollback-restart and
// be byte-identical across repeats.
func TestGoldenDeterminismULFM(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"rank", func(o *Options) { o.Failures = []Failure{KillRank(40*time.Millisecond, 3)} }},
		{"node", func(o *Options) { o.Failures = []Failure{KillNode(40*time.Millisecond, 3)} }},
		{"vcl", func(o *Options) {
			o.Protocol = Vcl
			o.Failures = []Failure{KillRank(40*time.Millisecond, 3)}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := ulfmGolden()
			tc.mut(&o)
			rep, _, _ := goldenArtifacts(t, o)
			if rep.Repairs != 1 || rep.Restarts != 0 {
				t.Errorf("Repairs = %d, Restarts = %d, want 1 in-job repair and zero restarts",
					rep.Repairs, rep.Restarts)
			}
			if rep.RecoveredWork <= 0 || rep.RecoveredWork >= 1 {
				t.Errorf("RecoveredWork = %v, want in (0, 1) after one repair", rep.RecoveredWork)
			}
			checkGolden(t, o)
		})
	}
}

// TestGoldenDeterminismGrid covers the multi-cluster topology: WAN flow
// caps and per-cluster servers stress the fluid-flow rescheduling whose
// ordering the allocation work reworked.
func TestGoldenDeterminismGrid(t *testing.T) {
	checkGolden(t, Options{
		Workload:     WorkloadBT,
		Class:        ClassA,
		NP:           16,
		ProcsPerNode: 2,
		Protocol:     Vcl,
		Interval:     2 * time.Second,
		Platform:     PlatformGrid,
		Seed:         9,
	})
}
