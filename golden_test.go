package ftckpt

// Golden determinism tests: the contract the performance work must not
// bend is that a seed fully determines a run.  Every observable artifact —
// the Report (including the workload checksum), the metrics export and the
// Chrome trace timeline — must be byte-identical when the same Options run
// twice, including runs that exercise failure injection, recovery and
// replicated checkpoint servers.

import (
	"bytes"
	"testing"
	"time"
)

// goldenArtifacts executes one run and returns its comparable Report (the
// registry pointer stripped), metrics JSON and Chrome trace bytes.
func goldenArtifacts(t *testing.T, o Options) (Report, []byte, []byte) {
	t.Helper()
	col := NewCollector()
	o.Sink = col
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var met, trace bytes.Buffer
	if err := rep.Metrics.WriteJSON(&met); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	rep.Metrics = nil
	return rep, met.Bytes(), trace.Bytes()
}

func checkGolden(t *testing.T, o Options) {
	t.Helper()
	r1, m1, c1 := goldenArtifacts(t, o)
	r2, m2, c2 := goldenArtifacts(t, o)
	if r1 != r2 {
		t.Errorf("Report differs across identical runs:\n  first  %+v\n  second %+v", r1, r2)
	}
	if r1.Checksum != r2.Checksum {
		t.Errorf("checksum differs: %v vs %v", r1.Checksum, r2.Checksum)
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics JSON differs across identical runs (%d vs %d bytes)", len(m1), len(m2))
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("Chrome trace differs across identical runs (%d vs %d bytes)", len(c1), len(c2))
	}
}

// TestGoldenDeterminism runs each protocol twice through a failure and
// recovery and requires byte-identical artifacts.
func TestGoldenDeterminism(t *testing.T) {
	for _, proto := range []Protocol{Pcl, Vcl, Mlog} {
		t.Run(string(proto), func(t *testing.T) {
			checkGolden(t, Options{
				Workload:     WorkloadBT,
				Class:        ClassA,
				NP:           16,
				ProcsPerNode: 2,
				Protocol:     proto,
				Interval:     2 * time.Second,
				Servers:      2,
				Seed:         42,
				Failures:     []Failure{KillRank(3*time.Second, 5)},
			})
		})
	}
}

// TestGoldenDeterminismReplicated covers the replication + heartbeat path,
// whose retry timers and failover fetches must be as reproducible as the
// base protocols.
func TestGoldenDeterminismReplicated(t *testing.T) {
	checkGolden(t, Options{
		Workload:     WorkloadCGReal,
		NP:           8,
		ProcsPerNode: 2,
		Protocol:     Pcl,
		Interval:     5 * time.Millisecond,
		Servers:      3,
		Replication:  &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 2, RetryBackoff: time.Millisecond},
		Heartbeat:    &HeartbeatSpec{Period: 2 * time.Millisecond},
		Seed:         7,
		Failures: []Failure{
			KillServer(11*time.Millisecond, 1),
			KillRank(17*time.Millisecond, 3),
		},
	})
}

// TestGoldenDeterminismGrid covers the multi-cluster topology: WAN flow
// caps and per-cluster servers stress the fluid-flow rescheduling whose
// ordering the allocation work reworked.
func TestGoldenDeterminismGrid(t *testing.T) {
	checkGolden(t, Options{
		Workload:     WorkloadBT,
		Class:        ClassA,
		NP:           16,
		ProcsPerNode: 2,
		Protocol:     Vcl,
		Interval:     2 * time.Second,
		Platform:     PlatformGrid,
		Seed:         9,
	})
}
