package ftckpt

import (
	"ftckpt/internal/chaos"
	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"time"
)

// DegradedError is the structured error a job stops with when a loss is
// unrecoverable — every replica of a committed image gone, or every
// compute node lost with no spare remaining.  Run and Chaos surface it
// through errors.As instead of panicking.
type DegradedError = ftpm.DegradedError

// ChaosSpec seeds a random kill schedule for Chaos.  The schedule is a
// pure function of the spec and the job options: the same seed always
// kills the same components at the same virtual times.
type ChaosSpec struct {
	// Seed drives the schedule (independent of Options.Seed).
	Seed int64
	// Kills is the number of kill events.
	Kills int
	// ServerFrac and NodeFrac are the expected fractions of kills aimed
	// at checkpoint servers and whole compute nodes; BufferFrac and
	// PFSFrac aim kills at node-local staging buffers and PFS targets
	// (jobs with the matching Options.Storage levels only); the
	// remainder kill single ranks.
	ServerFrac float64
	NodeFrac   float64
	BufferFrac float64
	PFSFrac    float64
	// Kills land uniformly in [From, Until).
	From  time.Duration
	Until time.Duration
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	// Plan is the generated kill schedule, in execution order.
	Plan []Failure
	// Report summarizes the run (only the Metrics field is meaningful
	// after a degraded stop).
	Report Report
	// Degraded is non-nil when the job stopped with an unrecoverable
	// loss — the expected outcome without replication.
	Degraded *DegradedError
	// Violations lists recovery-invariant breaches: checksum divergence
	// from the failure-free reference, waves committed without a full
	// quorum-stored image set, messages replayed more than once, or (with
	// Options.Attribution) a per-phase breakdown that fails to conserve
	// the run's virtual completion time.  Empty means the run behaved
	// correctly.
	Violations []string
	// Checksum and Reference are the verification values of the chaos
	// run and of the failure-free reference (chaos value 0 when the run
	// degraded before completing).
	Checksum  float64
	Reference float64
}

// OK reports whether every recovery invariant held.
func (r *ChaosReport) OK() bool { return len(r.Violations) == 0 }

// Chaos runs the described job under a seeded random failure schedule —
// rank, node, checkpoint-server, staging-buffer and PFS-target kills,
// landing mid-wave and mid-restart — and checks the recovery
// invariants: the result matches
// the failure-free reference, no wave commits without its images stored
// on a write quorum of replicas, and logged messages are replayed
// exactly once.  A degraded stop is a reported outcome, not an error.
func Chaos(o Options, sp ChaosSpec) (ChaosReport, error) {
	cfg, err := buildConfig(o)
	if err != nil {
		return ChaosReport{}, err
	}
	out, err := chaos.Run(chaos.Config{
		Job: cfg,
		Spec: chaos.Spec{
			Seed: sp.Seed, Kills: sp.Kills,
			ServerFrac: sp.ServerFrac, NodeFrac: sp.NodeFrac,
			BufferFrac: sp.BufferFrac, PFSFrac: sp.PFSFrac,
			From: sp.From, Until: sp.Until,
		},
		Checksum: checksum,
	})
	if err != nil {
		return ChaosReport{}, err
	}
	rep := ChaosReport{
		Report:     reportFrom(out.Result, cfg.NP),
		Degraded:   out.Degraded,
		Violations: out.Violations,
	}
	for _, ev := range out.Plan {
		f := Failure{At: ev.At, Kind: ev.Kind.String()}
		switch ev.Kind {
		case failure.KindNode:
			f.Node = ev.Node
		case failure.KindServer:
			f.Server = ev.Server
		case failure.KindBuffer:
			f.Node = ev.Node
		case failure.KindPFS:
			f.Server = ev.Server
		default:
			f.Rank = ev.Rank
		}
		rep.Plan = append(rep.Plan, f)
	}
	if len(out.Checksums) > 0 {
		rep.Checksum = out.Checksums[0]
	}
	if len(out.Reference) > 0 {
		rep.Reference = out.Reference[0]
	}
	return rep, nil
}
