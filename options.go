package ftckpt

import "time"

// Typed facade constants.  Protocol, Platform, Workload and Class are
// string-backed, so the stringly-typed literals of earlier releases
// ("pcl", "ethernet", "bt", "B") keep compiling unchanged; the exported
// constants below are the supported values, and buildConfig rejects
// anything outside them with an error naming the Options field.

// Protocol selects the fault-tolerance protocol of a run.
type Protocol string

// Protocols.
const (
	// ProtocolNone disables checkpointing (baseline runs).  The zero
	// value "" means the same.
	ProtocolNone Protocol = "none"
	// Pcl is the blocking coordinated protocol (MPICH2 implementation).
	Pcl Protocol = "pcl"
	// Vcl is the non-blocking Chandy–Lamport protocol (MPICH-V).
	Vcl Protocol = "vcl"
	// Mlog is uncoordinated checkpointing with pessimistic message
	// logging (single-process recovery).
	Mlog Protocol = "mlog"
)

// Platform selects the simulated platform of a run.
type Platform string

// Platforms.
const (
	// PlatformEthernet is the Gigabit-Ethernet cluster (default).
	PlatformEthernet Platform = "ethernet"
	// PlatformMyrinetGM is Myrinet through the GM/Nemesis stack.
	PlatformMyrinetGM Platform = "myrinet-gm"
	// PlatformMyrinetTCP is Myrinet through the TCP/sock stack.
	PlatformMyrinetTCP Platform = "myrinet-tcp"
	// PlatformGrid is the six-cluster Grid'5000 topology with
	// per-cluster checkpoint servers.
	PlatformGrid Platform = "grid"
)

// Workload selects the application of a run.
type Workload string

// Workloads.
const (
	// WorkloadBT is the NPB BT model (default).
	WorkloadBT Workload = "bt"
	// WorkloadCG is the NPB CG model.
	WorkloadCG Workload = "cg"
	// WorkloadMG is the NPB MG model.
	WorkloadMG Workload = "mg"
	// WorkloadLU is the NPB LU model.
	WorkloadLU Workload = "lu"
	// WorkloadCGReal is the real distributed conjugate-gradient kernel.
	WorkloadCGReal Workload = "cg-real"
	// WorkloadEP is the real NAS EP kernel.
	WorkloadEP Workload = "ep"
	// WorkloadJacobi is the real 2D heat-diffusion kernel.
	WorkloadJacobi Workload = "jacobi"
)

// Class selects the NPB problem class for the model workloads.
type Class string

// NPB classes.
const (
	ClassA Class = "A"
	ClassB Class = "B"
	ClassC Class = "C"
)

// RecoveryMode selects how a run reacts to process failures.
type RecoveryMode string

// Recovery modes.
const (
	// RecoveryRestart is the paper's rollback-restart: a failure kills the
	// whole job, which relaunches from the last committed wave.  The zero
	// value "" means the same.
	RecoveryRestart RecoveryMode = "restart"
	// RecoveryULFM repairs the world in place, ULFM-style: the failed
	// rank's communicator is revoked, the survivors agree on the failure
	// and the newest common application snapshot, a replacement is spliced
	// in (onto a spare node if the machine died) and the job resumes —
	// without moving the committed recovery line.  Requires a workload
	// that keeps in-memory partner snapshots (WorkloadJacobi,
	// WorkloadCGReal); any irreparable failure falls back to
	// RecoveryRestart.  Mlog runs keep their native single-process
	// recovery.
	RecoveryULFM RecoveryMode = "ulfm"
)

// Failure schedules the kill of one component at a virtual time.  Build
// values with KillRank, KillNode, KillServer, KillBuffer or KillPFS; the
// raw struct-literal form (Kind plus the matching index field) is
// deprecated but still honoured.  Kind "" means "rank".
type Failure struct {
	At     time.Duration
	Kind   string
	Rank   int
	Node   int
	Server int
}

// KillRank schedules the kill of one MPI process at virtual time at.
func KillRank(at time.Duration, rank int) Failure {
	return Failure{At: at, Kind: "rank", Rank: rank}
}

// KillNode schedules the kill of a whole compute node: every process on
// it dies and the machine leaves the pool.
func KillNode(at time.Duration, node int) Failure {
	return Failure{At: at, Kind: "node", Node: node}
}

// KillServer schedules the kill of a checkpoint server: its stored images
// and logs are lost; replicas on other servers survive.
func KillServer(at time.Duration, server int) Failure {
	return Failure{At: at, Kind: "server", Server: server}
}

// KillBuffer schedules the loss of one compute node's staging buffer
// (storage-hierarchy runs only): its staged images vanish and in-flight
// drains are cancelled, but the node and its ranks keep running —
// restores fall through to the servers or the PFS.
func KillBuffer(at time.Duration, node int) Failure {
	return Failure{At: at, Kind: "buffer", Node: node}
}

// KillPFS schedules the loss of one parallel-file-system target
// (storage-hierarchy runs only): stripes on it become unreadable, so
// images needing that target can no longer be served from the PFS level.
func KillPFS(at time.Duration, target int) Failure {
	return Failure{At: at, Kind: "pfs", Server: target}
}

// ReplicationSpec groups the checkpoint-image replication knobs.
type ReplicationSpec struct {
	// Replicas keeps that many copies of every image and log set across
	// the checkpoint servers (default 1, the paper's single-copy model).
	Replicas int
	// WriteQuorum is how many replicas must acknowledge before a store
	// counts as durable (default all Replicas).
	WriteQuorum int
	// StoreRetries bounds re-ship and recovery-fetch attempts after a
	// replica dies; RetryBackoff is the delay before each retry.
	StoreRetries int
	RetryBackoff time.Duration
}

// HeartbeatSpec groups the failure-detector knobs.  A non-nil spec with
// Period > 0 replaces instant failure detection with a heartbeat
// detector: the dispatcher pings ranks and servers each Period and
// declares a component dead after Timeout of silence (default 4×Period).
type HeartbeatSpec struct {
	Period  time.Duration
	Timeout time.Duration
}

// LevelKind names a tier of the checkpoint storage hierarchy.
type LevelKind string

// Storage level kinds, fastest to most durable.
const (
	// LevelBuffer is a node-local staging buffer: each compute node
	// absorbs its ranks' images at local-memory speed and drains them to
	// the next level in the background.  Lost with the node.
	LevelBuffer LevelKind = "buffer"
	// LevelServers is the paper's checkpoint-server tier — dedicated
	// nodes holding replicated images, the only mandatory level.
	LevelServers LevelKind = "servers"
	// LevelPFS is a parallel file system: images striped across Targets
	// backend targets, slowest but most durable.
	LevelPFS LevelKind = "pfs"
)

// LevelSpec describes one tier of a StorageSpec.  Zero fields take the
// level kind's defaults; fields that do not apply to a kind must stay
// zero (Servers/Replicas/WriteQuorum are for LevelServers,
// Targets/Stripes for LevelPFS).
type LevelSpec struct {
	// Kind is the tier: LevelBuffer, LevelServers or LevelPFS.
	Kind LevelKind
	// Servers, Replicas, WriteQuorum, StoreRetries and RetryBackoff are
	// the LevelServers knobs — the same knobs ReplicationSpec and
	// Options.Servers configure for the flat single-level model.
	Servers      int
	Replicas     int
	WriteQuorum  int
	StoreRetries int
	RetryBackoff time.Duration
	// Bandwidth (bytes/s) and Latency shape the level's transfer model
	// for LevelBuffer and LevelPFS (LevelServers uses the platform
	// network).  0 keeps the kind's default.
	Bandwidth float64
	Latency   time.Duration
	// Capacity bounds a buffer level's staged bytes per node (0 =
	// unbounded); the oldest staged image is evicted when full.
	// Retention bounds staged images per rank the same way.
	Capacity  int64
	Retention int
	// Targets is the PFS backend-target count (default 4); Stripes is
	// how many targets one image is striped across (default 2).
	Targets int
	Stripes int
}

// StorageSpec describes a multi-level checkpoint storage hierarchy:
// Levels ordered fastest-first (an optional LevelBuffer, the mandatory
// LevelServers, an optional LevelPFS last).  Writes complete at the
// fastest level and drain down asynchronously; restores search from the
// fastest level and fall through on a miss or a failed level.  Setting
// Storage conflicts with Options.Servers and Options.Replication — the
// servers level carries those knobs instead.
type StorageSpec struct {
	// Levels, fastest first.  A single {Kind: LevelServers} level is the
	// flat model expressed in the new form.
	Levels []LevelSpec
	// Incremental switches to dirty-region checkpoints: every FullEvery-th
	// image per rank is full (default 4), the others carry only the
	// regions touched since — DirtyFraction of the image per elapsed
	// interval (default 0.35), restore replaying the chain since the
	// last full image.
	Incremental   bool
	FullEvery     int
	DirtyFraction float64
	// Compress scales stored and restored bytes by CompressRatio
	// (default 0.6) before they hit any level.
	Compress      bool
	CompressRatio float64
}

// Options describes one fault-tolerant MPI run.
type Options struct {
	// Workload selects the application: WorkloadBT, WorkloadCG,
	// WorkloadMG, WorkloadLU (NPB models), WorkloadCGReal, WorkloadEP,
	// WorkloadJacobi (real kernels).  Default WorkloadBT.
	Workload Workload
	// Class is the NPB class for the model workloads: ClassA, ClassB or
	// ClassC.  Default ClassB.
	Class Class
	// NP is the number of MPI processes; ProcsPerNode co-locates them
	// (dual-processor nodes sharing one NIC, default 1).
	NP           int
	ProcsPerNode int
	// Protocol is ProtocolNone, Pcl (blocking), Vcl (non-blocking) or
	// Mlog (uncoordinated checkpointing + pessimistic message logging);
	// Interval is the time between checkpoint waves (per process for
	// Mlog).
	Protocol Protocol
	Interval time.Duration
	// Servers is the number of checkpoint servers (default 1 when
	// checkpointing).  Conflicts with Storage, whose servers level
	// carries the count instead.
	Servers int
	// Replication groups the replication knobs; nil keeps the paper's
	// single-copy model.  Conflicts with Storage.
	Replication *ReplicationSpec
	// Heartbeat enables the ping/timeout failure detector; nil keeps
	// instant failure detection.
	Heartbeat *HeartbeatSpec
	// Storage selects the multi-level checkpoint storage hierarchy; nil
	// keeps the flat single-level server model that Servers and
	// Replication configure.
	Storage *StorageSpec
	// Platform is PlatformEthernet (default), PlatformMyrinetGM,
	// PlatformMyrinetTCP or PlatformGrid.
	Platform Platform
	// VclProcessLimit overrides the Vcl dispatcher's select() limit
	// (paper §5.4, ~300 processes); -1 removes it for what-if studies at
	// larger scales, 0 keeps the default.
	VclProcessLimit int
	// Recovery selects the failure-recovery mode: RecoveryRestart (the
	// default) or RecoveryULFM (in-job repair from partner snapshots).
	Recovery RecoveryMode
	// Spares reserves that many spare compute nodes for ULFM node-loss
	// repairs: when a machine dies with its rank, the replacement is
	// spliced onto a spare instead of overbooking a survivor.
	Spares int
	// Seed drives the deterministic simulation.
	Seed int64
	// Shards partitions the simulation kernel into that many
	// conservatively synchronized shards, each staging its ranks' events
	// on its own goroutine (time-window synchronization with the
	// platform's minimum link latency as lookahead).  0 (the default) or
	// 1 runs the sequential kernel.  For any fixed Seed the Report,
	// metrics, traces and attribution are byte-identical at every shard
	// count — sharding only spreads the event-queue work across cores.
	Shards int
	// Failures schedules component kills (KillRank, KillNode, KillServer,
	// KillBuffer, KillPFS); MTTF adds memoryless rank failures, ServerMTTF and
	// NodeMTTF the same for checkpoint servers and compute nodes (each
	// an independent failure process).
	Failures   []Failure
	MTTF       time.Duration
	ServerMTTF time.Duration
	NodeMTTF   time.Duration
	// Verbose receives runtime progress lines.
	Verbose func(format string, args ...any)
	// Sink receives every structured observability event of the run (see
	// observe.go); a Collector here enables timeline export.
	Sink Sink
	// Metrics, when set, makes the run fold its counters and histograms
	// into an existing registry instead of a private one — sharing one
	// registry aggregates several runs.
	Metrics *Metrics
	// Attribution attaches the causal span tracer and computes the run's
	// conservation-checked per-phase overhead breakdown, returned on
	// Report.Attribution.
	Attribution bool
	// MetricsSnapshot > 0 samples the run's cumulative counters every
	// period as counter-sample events, rendered by the trace exporters as
	// Perfetto counter tracks alongside the timeline.
	MetricsSnapshot time.Duration
}
